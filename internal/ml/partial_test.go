package ml

import (
	"testing"

	"repro/internal/relational"
)

// buildPartialStar joins a fact table to one dimension with three foreign
// features for partial-view tests.
func buildPartialStar(t *testing.T) (*relational.Table, int) {
	t.Helper()
	keyDom := relational.NewDomain("RID", 2)
	dim := relational.NewTable("R", relational.MustSchema(
		relational.Column{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom},
		relational.Column{Name: "a", Kind: relational.KindFeature, Domain: relational.NewDomain("a", 2)},
		relational.Column{Name: "b", Kind: relational.KindFeature, Domain: relational.NewDomain("b", 2)},
		relational.Column{Name: "c", Kind: relational.KindFeature, Domain: relational.NewDomain("c", 2)},
	), 2)
	dim.MustAppendRow([]relational.Value{0, 0, 1, 0})
	dim.MustAppendRow([]relational.Value{1, 1, 0, 1})
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "xs", Kind: relational.KindFeature, Domain: relational.NewDomain("xs", 2)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"},
	), 4)
	for i := 0; i < 4; i++ {
		fact.MustAppendRow([]relational.Value{relational.Value(i % 2), relational.Value(i % 2), relational.Value(i % 2)})
	}
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	return joined, ss.TargetCol
}

func TestPartialViewSubsets(t *testing.T) {
	joined, target := buildPartialStar(t)
	names := func(cols []int) []string {
		var out []string
		for _, c := range cols {
			out = append(out, joined.Schema().Cols[c].Name)
		}
		return out
	}
	check := func(spec PartialSpec, want []string) {
		t.Helper()
		cols, err := PartialViewColumns(joined, spec)
		if err != nil {
			t.Fatal(err)
		}
		got := names(cols)
		if len(got) != len(want) {
			t.Fatalf("spec %v: got %v want %v", spec, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("spec %v: got %v want %v", spec, got, want)
			}
		}
	}
	// Empty spec ≡ NoJoin column set.
	check(PartialSpec{}, []string{"xs", "FK"})
	// One foreign feature kept.
	check(PartialSpec{"R": {"b"}}, []string{"xs", "FK", "R.b"})
	// All kept ≡ JoinAll column set.
	check(PartialSpec{"R": {"a", "b", "c"}}, []string{"xs", "FK", "R.a", "R.b", "R.c"})

	ds, err := PartialViewDataset(joined, target, PartialSpec{"R": {"c"}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 3 {
		t.Fatalf("partial dataset has %d features", ds.NumFeatures())
	}
}

func TestPartialViewRejectsUnknownFeature(t *testing.T) {
	joined, _ := buildPartialStar(t)
	if _, err := PartialViewColumns(joined, PartialSpec{"R": {"zz"}}); err == nil {
		t.Fatal("unknown foreign feature must error")
	}
	if _, err := PartialViewColumns(joined, PartialSpec{"Q": {"a"}}); err == nil {
		t.Fatal("unknown dimension must error")
	}
}

func TestForeignFeatureNames(t *testing.T) {
	joined, _ := buildPartialStar(t)
	menu := ForeignFeatureNames(joined)
	if len(menu) != 1 {
		t.Fatalf("menu = %v", menu)
	}
	feats := menu["R"]
	if len(feats) != 3 || feats[0] != "a" || feats[2] != "c" {
		t.Fatalf("R features = %v", feats)
	}
}
