# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check bench-gate` locally means
# a green pipeline.

# pipefail so `go test | tee` recipes fail when the test run fails, not just
# when tee does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# The benchmark pairs the regression gate watches: join pipeline, the five
# row-vs-columnar learner pairs, the serving paths, the GEMM-vs-scalar
# compute-kernel pairs (SVM Gram build, batched ANN serving), the zone-map
# skip pairs, the segmented-vs-slab parity pairs, and the concurrent-serving
# quartet (uncoalesced vs coalesced vs factorized-linear vs the hardened
# entry — admission gate + panic recovery — under 64 clients).
BENCH_REGEX = Benchmark(Join(Materialized|View)|(NBFit|TreeSplit|LogRegFit|SVMFit|ANNFit)(RowAtATime|Columnar)|SVMFitErrorCache|ANNFitFusedAdam|Serve(Factorized|Joined)|SVMKernelCache(Scalar|Gemm)|ServeBatch(Scalar|Gemm)|SelectEqSeg(FullScan|ZoneSkip)|TreeSplitZone(FullSearch|Skip)|SegParScan(Slab|Seg)|(NBFit|TreeSplit)Segmented|ServeConcurrent(Scalar|Coalesced|Factorized|Hardened))$$
# Time-based benchtime so every bench accumulates several iterations per
# sample — the nanosecond-scale Serve* benches get millions, the ~100ms Fit
# benches get a handful — and -count 5 gives benchgate a median that shrugs
# off scheduler spikes. The full sweep takes ~2 minutes on one core.
BENCH_FLAGS = -run xxx -bench '$(BENCH_REGEX)' -benchtime 1s -count 5 -benchmem .

.PHONY: check test bench bench-baseline bench-gate lint fuzz-smoke load

check: lint test

test:
	go build ./... && go test ./...

bench:
	go test $(BENCH_FLAGS)

# bench-baseline refreshes the committed regression baseline. Run it on a
# quiet machine after a deliberate performance change, commit the result, and
# mention the change in the PR so reviewers know the bar moved. The absolute
# ns/op comparison assumes baseline and gate run on comparable hardware —
# refresh the baseline from a CI run's bench_current.txt artifact if the
# runner class changes (the within-run pair-speedup check is
# machine-independent either way).
bench-baseline:
	go test $(BENCH_FLAGS) | tee bench_baseline.txt

# bench-gate reproduces CI's benchmark-regression gate: >20% median ns/op
# regression on any gated benchmark vs bench_baseline.txt fails, as does any
# pair group without a winner — some iterative learner >=1.5x columnar, a
# >=1.5x compute-kernel win (SVMFit / ANNFit / the SVM Gram-build pair), a
# >=1.5x zone-map skip win, segmented-engine parity at >=0.95x vs the
# monolithic slab, a >=2x coalesced-vs-scalar concurrent-serving win, and 0
# allocs/op on the coalesced and factorized-linear serving paths.
#
# BENCH_JSON=<path> additionally writes the gated medians (ns/op, allocs/op)
# as a machine-readable JSON digest — the committed BENCH_<n>.json artifacts.
bench-gate:
	go test $(BENCH_FLAGS) | tee bench_current.txt
	go run ./cmd/benchgate -baseline bench_baseline.txt -current bench_current.txt $(if $(BENCH_JSON),-json $(BENCH_JSON))

# load runs the closed-loop serving load harness against a freshly trained
# artifact: train Naive Bayes on the Movies sample, start hamletd, drive it
# at the default 64 connections for a short burst, and print the latency
# quantiles, throughput, allocation rate, and coalescer fill report.
# Override duration/conns with LOAD_FLAGS="-duration 30s -conns 128"; the
# default -scrape adds the server's own /metrics view: counter deltas and
# bucket-derived latency quantiles next to the client-side percentiles.
LOAD_FLAGS = -duration 3s -warmup 500ms -scrape
load:
	go build -o . ./cmd/hamletd ./cmd/hamletload ./cmd/hamlet
	./hamlet -train -dataset Movies -spec "NaiveBayes(BFS)" -scale 64 -model /tmp/load_model.bin
	./hamletd -model /tmp/load_model.bin -addr 127.0.0.1:8099 & \
	  HPID=$$!; trap "kill $$HPID" EXIT; sleep 0.3; \
	  ./hamletload -addr 127.0.0.1:8099 $(LOAD_FLAGS)

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# fuzz-smoke executes the committed fuzz corpora plus a short randomized
# burst for each fuzzer — the same step CI runs.
fuzz-smoke:
	go test ./internal/model -run xxx -fuzz 'FuzzCodecRoundTrip$$' -fuzztime 20s
	go test ./internal/model -run xxx -fuzz 'FuzzDecodeGarbage$$' -fuzztime 20s
	go test ./internal/relational -run xxx -fuzz 'FuzzColumnarEquivalence$$' -fuzztime 20s
	go test ./internal/relational -run xxx -fuzz 'FuzzSegmentedEquivalence$$' -fuzztime 20s
	go test ./internal/mat -run xxx -fuzz 'FuzzMatEquivalence$$' -fuzztime 20s
