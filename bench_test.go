// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the same code path as the cmd/ binaries at a reduced
// scale (absolute numbers are not the target — the JoinAll/NoJoin/NoFK
// orderings and tuple-ratio crossovers are) and reports the key findings as
// benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Environment knobs (all optional): REPRO_SCALE (default 256),
// REPRO_RUNS (default 3), REPRO_SVMCAP (default 150).
package main

import (
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/svm"
	"repro/internal/tree"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:  envInt("REPRO_SCALE", 256),
		Effort: core.EffortFast,
		SVMCap: envInt("REPRO_SVMCAP", 150),
		Runs:   envInt("REPRO_RUNS", 3),
		Seed:   1,
		Out:    io.Discard,
	}
}

// BenchmarkTable1Stats regenerates the dataset statistics table.
func BenchmarkTable1Stats(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) != 7 {
			b.Fatal("expected 7 datasets")
		}
	}
}

// BenchmarkTable2Trees regenerates the trees + 1-NN accuracy table and
// reports the mean |JoinAll − NoJoin| gap for the gini tree — the paper's
// headline "< 1%" finding.
func BenchmarkTable2Trees(b *testing.B) {
	o := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		gap = meanViewGap(cells, "DecisionTree(gini)")
	}
	b.ReportMetric(gap, "gini-join-gap")
}

// BenchmarkTable3Kernel regenerates the SVM/ANN/NB/LR accuracy table and
// reports the RBF-SVM JoinAll−NoJoin gap.
func BenchmarkTable3Kernel(b *testing.B) {
	o := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		gap = meanViewGap(cells, "SVM(rbf)")
	}
	b.ReportMetric(gap, "rbf-join-gap")
}

// meanViewGap averages JoinAll − NoJoin test accuracy over datasets for one
// model.
func meanViewGap(cells []experiments.AccuracyCell, model string) float64 {
	byDS := map[string]map[ml.View]float64{}
	for _, c := range cells {
		if c.Model != model {
			continue
		}
		if byDS[c.Dataset] == nil {
			byDS[c.Dataset] = map[ml.View]float64{}
		}
		byDS[c.Dataset][c.View] = c.TestAcc
	}
	sum, n := 0.0, 0
	for _, views := range byDS {
		sum += math.Abs(views[ml.JoinAll] - views[ml.NoJoin])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable4Robustness regenerates the dimension-dropping sweep.
func BenchmarkTable4Robustness(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("expected 7 datasets")
		}
	}
}

// BenchmarkTable5And6Training regenerates the training-accuracy companions.
func BenchmarkTable5And6Training(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t2, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Table5(o, t2); err != nil {
			b.Fatal(err)
		}
		t3, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Table6(o, t3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Runtime regenerates the runtime study and reports the
// median NoJoin speedup across (model, dataset) pairs.
func BenchmarkFigure1Runtime(b *testing.B) {
	o := benchOptions()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if s := r.Speedup(); s > 0 {
				sum += s
				n++
			}
		}
		speedup = sum / float64(n)
	}
	b.ReportMetric(speedup, "mean-nojoin-speedup")
}

// BenchmarkFigure2OneXr regenerates the six OneXr panels.
func BenchmarkFigure2OneXr(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure2(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatal("expected panels A-F")
		}
	}
}

// BenchmarkFigure3And4NetVariance regenerates the 1-NN / RBF-SVM nR sweeps
// with their net-variance series.
func BenchmarkFigure3And4NetVariance(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure3And4(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected 1-NN and RBF panels")
		}
	}
}

// BenchmarkFigure5Skew regenerates the FK-skew panels.
func BenchmarkFigure5Skew(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure5(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 4 {
			b.Fatal("expected panels A-D")
		}
	}
}

// BenchmarkFigure6XSXR regenerates the XSXR panels.
func BenchmarkFigure6XSXR(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure6(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 4 {
			b.Fatal("expected panels A-D")
		}
	}
}

// BenchmarkFigures7to9RepOneXr regenerates the RepOneXr sweeps for all
// three models.
func BenchmarkFigures7to9RepOneXr(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figures7to9(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatal("expected 3 figures × 2 tuple ratios")
		}
	}
}

// BenchmarkFigure10Compression regenerates the FK domain-compression study.
func BenchmarkFigure10Compression(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure10(o, []int{2, 5, 10, 25})
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected Flights and Yelp")
		}
	}
}

// BenchmarkFigure11Smoothing regenerates the FK smoothing study.
func BenchmarkFigure11Smoothing(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure11(o, []float64{0, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected random and xr strategies")
		}
	}
}

// --- Factorized-execution benchmarks: materialized vs zero-copy join. ---

// benchJoinPipeline measures one JoinAll data-preparation pipeline — join,
// carve the JoinAll dataset, scan every example once through the access path
// — under the materialized (eager Join) or factorized (JoinView) execution
// mode. Beyond ns/op and testing's own allocs, it reports:
//
//	alloc-bytes/op — total heap bytes allocated per pipeline run
//	peak-live-bytes — heap live after building the pipeline (post-GC),
//	                  i.e. what the prepared dataset keeps resident
//
// both via runtime.ReadMemStats, so the memory win of the view path is
// visible in the bench trajectory.
func benchJoinPipeline(b *testing.B, lazy bool) {
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		b.Fatal(err)
	}
	ss, err := dataset.Generate(spec, envInt("REPRO_SCALE", 256), 3)
	if err != nil {
		b.Fatal(err)
	}
	baseline := liveBytes()
	var allocTotal, peakLive uint64
	var sink relational.Value
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m0, m2 runtime.MemStats
		runtime.ReadMemStats(&m0)
		var joined relational.Relation
		if lazy {
			jv, err := relational.NewJoinView(ss)
			if err != nil {
				b.Fatal(err)
			}
			joined = jv
		} else {
			jt, err := relational.Join(ss)
			if err != nil {
				b.Fatal(err)
			}
			joined = jt
		}
		ds, err := ml.ViewDataset(joined, ss.TargetCol, ml.JoinAll, nil)
		if err != nil {
			b.Fatal(err)
		}
		// The forced GC inside liveBytes would dominate ns/op; sample the
		// pipeline's resident size off the clock.
		b.StopTimer()
		if live := liveBytes(); live > baseline && live-baseline > peakLive {
			peakLive = live - baseline
		}
		b.StartTimer()
		buf := make([]relational.Value, ds.NumFeatures())
		n := ds.NumExamples()
		for r := 0; r < n; r++ {
			row := ds.RowInto(buf, r)
			sink += row[len(row)-1]
		}
		runtime.ReadMemStats(&m2)
		allocTotal += m2.TotalAlloc - m0.TotalAlloc
		runtime.KeepAlive(joined)
	}
	b.StopTimer()
	_ = sink
	b.ReportMetric(float64(allocTotal)/float64(b.N), "alloc-bytes/op")
	b.ReportMetric(float64(peakLive), "peak-live-bytes")
}

// liveBytes forces a collection and returns the live heap size.
func liveBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// BenchmarkJoinMaterialized is the historical eager pipeline: the joined
// table exists physically before any dataset is carved from it.
func BenchmarkJoinMaterialized(b *testing.B) { benchJoinPipeline(b, false) }

// BenchmarkJoinView is the factorized pipeline: the join stays virtual and
// every access resolves through the FK indirection.
func BenchmarkJoinView(b *testing.B) { benchJoinPipeline(b, true) }

// --- Columnar-engine benchmarks: row-at-a-time vs batched column training. ---

// benchTrainSplit prepares the Movies JoinAll training split on the chosen
// storage engine. Env construction (including, for the columnar engine, the
// one-time join materialization) is setup, not measurement: the paper's
// pipelines tune hyper-parameters with grid search, so one prepared split is
// trained on many times.
func benchTrainSplit(b *testing.B, engine core.Engine) *ml.Dataset {
	b.Helper()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		b.Fatal(err)
	}
	ss, err := dataset.Generate(spec, envInt("REPRO_SCALE", 256), 3)
	if err != nil {
		b.Fatal(err)
	}
	env, err := core.NewEnvEngine(ss, 7, engine)
	if err != nil {
		b.Fatal(err)
	}
	train, _, _, err := env.ViewSplits(ml.JoinAll, nil)
	if err != nil {
		b.Fatal(err)
	}
	return train
}

// benchNBFit measures one Naive Bayes Fit — the paper's cheapest learner,
// where data access dominates arithmetic — under the row-at-a-time counting
// loop on the zero-copy row engine vs the batched column path on the
// columnar engine.
func benchNBFit(b *testing.B, columnar bool) {
	engine := core.EngineRow
	if columnar {
		engine = core.EngineColumnar
	}
	train := benchTrainSplit(b, engine)
	cfg := nb.Config{RowAtATime: !columnar}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nb.New(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBFitRowAtATime is the historical path: example-at-a-time
// counting through the lazy join view.
func BenchmarkNBFitRowAtATime(b *testing.B) { benchNBFit(b, false) }

// BenchmarkNBFitColumnar is the batch path: label scan + per-feature
// column scans over width-narrowed columnar storage.
func BenchmarkNBFitColumnar(b *testing.B) { benchNBFit(b, true) }

// BenchmarkNBFitSegmented re-runs the columnar fit on EngineSegmented: the
// same morsel fan-out, but spans aligned to segment boundaries and reads
// routed per segment. Paired against the single-slab Columnar bench at
// parity (the gate requires segmented >= 0.95x slab, not a speedup):
// segmentation buys spill capability and skip statistics, and this pair
// proves it does not tax the hot loops. It sits directly after its pair
// sibling so the two run back to back — within-run pair ratios stay
// meaningful even when a long sweep drifts with machine load.
func BenchmarkNBFitSegmented(b *testing.B) {
	train := benchTrainSplit(b, core.EngineSegmented)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nb.New(nb.Config{})
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTreeFit measures one decision-tree Fit — dominated by the per-node
// split search — under the per-cell map-tally search on the row engine vs
// the morsel-parallel columnar search on the columnar engine.
func benchTreeFit(b *testing.B, columnar bool) {
	engine := core.EngineRow
	if columnar {
		engine = core.EngineColumnar
	}
	train := benchTrainSplit(b, engine)
	cfg := tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3, RowAtATime: !columnar}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tree.New(cfg)
		if err := tr.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeSplitRowAtATime is the historical per-cell split search.
func BenchmarkTreeSplitRowAtATime(b *testing.B) { benchTreeFit(b, false) }

// BenchmarkTreeSplitColumnar is the batched column-scan split search.
func BenchmarkTreeSplitColumnar(b *testing.B) { benchTreeFit(b, true) }

// BenchmarkTreeSplitSegmented is the segmented parity sibling of
// BenchmarkTreeSplitColumnar (see BenchmarkNBFitSegmented).
func BenchmarkTreeSplitSegmented(b *testing.B) {
	train := benchTrainSplit(b, core.EngineSegmented)
	cfg := tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tree.New(cfg)
		if err := tr.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Iterative-learner benchmarks: row-at-a-time vs columnar epochs. ---
//
// The iterative gradient learners re-read every feature every epoch, so the
// columnar win compounds: one batched column pass per Fit (into the
// active-index matrix / column block) replaces an n×d row-gather per epoch.

// benchLogRegFit measures one logistic-regression Fit (30 SGD epochs) under
// the per-example row gathers on the row engine vs the one-pass active-index
// materialization on the columnar engine.
func benchLogRegFit(b *testing.B, columnar bool) {
	engine := core.EngineRow
	if columnar {
		engine = core.EngineColumnar
	}
	train := benchTrainSplit(b, engine)
	cfg := linear.LogRegConfig{Lambda: 1e-3, Seed: 7, RowAtATime: !columnar}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := linear.NewLogReg(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogRegFitRowAtATime is the historical epoch loop: one row gather
// plus Encoder.ActiveIndices per example per epoch through the join view.
func BenchmarkLogRegFitRowAtATime(b *testing.B) { benchLogRegFit(b, false) }

// BenchmarkLogRegFitColumnar scans every feature once into the active-index
// matrix and amortizes the pass over all epochs.
func BenchmarkLogRegFitColumnar(b *testing.B) { benchLogRegFit(b, true) }

// benchSVMFit measures one SMO Fit — row pinning plus the n×n kernel-cache
// build plus the optimization loop — under per-row materialization and
// row-pair match counts vs batched column scans and the morsel-parallel
// columnar cache build.
func benchSVMFit(b *testing.B, columnar, errorCache bool) {
	engine := core.EngineRow
	if columnar {
		engine = core.EngineColumnar
	}
	train := benchTrainSplit(b, engine)
	cfg := svm.Config{
		Kernel:       svm.RBF,
		C:            10,
		Gamma:        0.1,
		SubsampleCap: envInt("REPRO_SVMCAP", 1024),
		Seed:         7,
		RowAtATime:   !columnar,
		ErrorCache:   errorCache,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := svm.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMFitRowAtATime is the historical path: MaterializedRows plus a
// sequential row-pair kernel cache.
func BenchmarkSVMFitRowAtATime(b *testing.B) { benchSVMFit(b, false, false) }

// BenchmarkSVMFitColumnar pulls each feature in one batched column scan and
// builds the kernel cache from column-at-a-time match counts in parallel.
func BenchmarkSVMFitColumnar(b *testing.B) { benchSVMFit(b, true, false) }

// BenchmarkSVMFitErrorCache is the approximate-tier sibling of
// BenchmarkSVMFitColumnar: identical data, engine, and hyper-parameters,
// with Config.ErrorCache replacing the full f(i) recomputation per KKT check
// by incremental E-vector maintenance and max-violating-pair selection.
// Accuracy-gated (not bit-identical); benchgate holds it to ≥1.5× over the
// Columnar default.
func BenchmarkSVMFitErrorCache(b *testing.B) { benchSVMFit(b, true, true) }

// benchANNFit measures one MLP Fit (mini-batch Adam) under per-example row
// gathers vs the one-pass active-index materialization. Network sizes match
// the EffortFast grid so the bench isolates data access against a realistic
// arithmetic load.
func benchANNFit(b *testing.B, columnar, fusedAdam bool) {
	engine := core.EngineRow
	if columnar {
		engine = core.EngineColumnar
	}
	train := benchTrainSplit(b, engine)
	cfg := ann.Config{
		Hidden1:      32,
		Hidden2:      16,
		LearningRate: 1e-2,
		Epochs:       10,
		Seed:         7,
		RowAtATime:   !columnar,
		FusedAdam:    fusedAdam,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ann.New(cfg)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkANNFitRowAtATime is the historical epoch loop: one row gather per
// example per epoch.
func BenchmarkANNFitRowAtATime(b *testing.B) { benchANNFit(b, false, false) }

// BenchmarkANNFitColumnar feeds the sparse input layer from the one-pass
// active-index matrix.
func BenchmarkANNFitColumnar(b *testing.B) { benchANNFit(b, true, false) }

// BenchmarkANNFitFusedAdam is the approximate-tier sibling of
// BenchmarkANNFitColumnar: identical data, engine, and hyper-parameters,
// with Config.FusedAdam replacing the sparse per-row Adam chains by one
// fused mat.AdamStep pass per contiguous slab. Accuracy-gated (not
// bit-identical); benchgate holds it to ≥1.5× over the Columnar default.
func BenchmarkANNFitFusedAdam(b *testing.B) { benchANNFit(b, true, true) }

// benchKernelCache measures one n×n SVM Gram-matrix build at the SVMFit
// bench scale — the dominant arithmetic of a capped SMO fit — as the per-pair
// scalar build (one Kernel.Eval call per row pair) vs the blocked compute
// kernel (mat.MatchCounts X·Xᵀ per i-block + match-count lookup table,
// i-blocks fanned across ml.ParallelFor). Both builds produce bit-identical
// caches; only the schedule differs.
func benchKernelCache(b *testing.B, blocked bool) {
	train := benchTrainSplit(b, core.EngineColumnar)
	n := train.NumExamples()
	if cap := envInt("REPRO_SVMCAP", 1024); n > cap {
		perm := rng.New(7).Perm(n)
		train = train.Subset(perm[:cap])
		n = cap
	}
	d := train.NumFeatures()
	block, _ := ml.ScanRowMajor(train)
	rows := make([][]relational.Value, n)
	for i := range rows {
		rows[i] = block[i*d : (i+1)*d]
	}
	k, err := svm.NewKernel(svm.RBF, 0.1, d)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float32, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			k.GramBlocked(dst, block, n)
		} else {
			k.GramRows(dst, rows)
		}
	}
}

// BenchmarkSVMKernelCacheScalar is the historical build: one kernel
// evaluation (function call + match-count loop + exp) per row pair.
func BenchmarkSVMKernelCacheScalar(b *testing.B) { benchKernelCache(b, false) }

// BenchmarkSVMKernelCacheGemm is the blocked build: match counts as a
// blocked one-hot X·Xᵀ, kernel values from a (d+1)-entry LUT.
func BenchmarkSVMKernelCacheGemm(b *testing.B) { benchKernelCache(b, true) }

// benchServeEngine trains Naive Bayes on the Movies JoinAll view, binds a
// serving engine, and precomputes a request stream from the fact table —
// the shared setup of the serving-path pair.
func benchServeEngine(b *testing.B) (*serve.Engine, [][]relational.Value) {
	o := benchOptions()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		b.Fatal(err)
	}
	ss, err := dataset.Generate(spec, o.Scale, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		b.Fatal(err)
	}
	targetCol := jv.Schema().ColumnsOfKind(relational.KindTarget)[0]
	train, err := ml.ViewDataset(jv, targetCol, ml.JoinAll, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := nb.New(nb.Config{})
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	artifact, err := model.New(m, train.Features, nil)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(artifact, ss)
	if err != nil {
		b.Fatal(err)
	}
	n := ss.Fact.NumRows()
	if n > 1024 {
		n = 1024
	}
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	return engine, reqs
}

// BenchmarkServeFactorized measures one inference request on the factorized
// path: per-dimension partial-score lookups keyed by FK, no join, no
// per-request allocation.
func BenchmarkServeFactorized(b *testing.B) {
	engine, reqs := benchServeEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.PredictFactorized(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeJoined measures the same request stream with the join paid
// per request: gather the dimension rows, assemble the joined feature
// vector, score it.
func BenchmarkServeJoined(b *testing.B) {
	engine, reqs := benchServeEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.PredictJoined(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeEngineANN binds an MLP artifact to the Movies schema — a
// gather-path model whose per-request forward pass is the allocation-heavy
// cost the batched GEMM serving path eliminates — plus a request stream.
func benchServeEngineANN(b *testing.B) (*serve.Engine, [][]relational.Value) {
	o := benchOptions()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		b.Fatal(err)
	}
	ss, err := dataset.Generate(spec, o.Scale, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		b.Fatal(err)
	}
	targetCol := jv.Schema().ColumnsOfKind(relational.KindTarget)[0]
	train, err := ml.ViewDataset(jv, targetCol, ml.JoinAll, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := ann.New(ann.Config{Hidden1: 32, Hidden2: 16, LearningRate: 1e-2, Epochs: 2, Seed: 7})
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	artifact, err := model.New(m, train.Features, nil)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(artifact, ss)
	if err != nil {
		b.Fatal(err)
	}
	n := min(ss.Fact.NumRows(), 1024)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	return engine, reqs
}

// BenchmarkServeBatchScalar scores one full request stream against the MLP
// artifact through the per-request API — join gather plus one scalar forward
// pass (which allocates both hidden layers) per request, the cost a client
// pays issuing single-prediction calls in a loop.
func BenchmarkServeBatchScalar(b *testing.B) {
	engine, reqs := benchServeEngineANN(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := engine.PredictJoined(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeBatchGemm scores the same stream through PredictBatch: the
// morsel-parallel chunks only assemble joined rows, and one batched GEMM
// forward pass (ml.BatchPredictor) classifies the entire batch with
// identical classes.
func BenchmarkServeBatchGemm(b *testing.B) {
	engine, reqs := benchServeEngineANN(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.PredictBatch(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeEngineANNWide binds a first-layer-dominant MLP (wide hidden
// layer over the feature-rich Yelp schema, narrow tail) — the regime
// factorized serving targets: per-request cost is dominated by the z1
// gather-and-fold that precomputed per-dimension hidden partials and
// batched flushes amortize, while the dense tail every path must pay stays
// small. The ServeConcurrent gate pair measures this shape.
func benchServeEngineANNWide(b *testing.B) (*serve.Engine, [][]relational.Value) {
	o := benchOptions()
	spec, err := dataset.SpecByName("Yelp")
	if err != nil {
		b.Fatal(err)
	}
	ss, err := dataset.Generate(spec, o.Scale, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		b.Fatal(err)
	}
	targetCol := jv.Schema().ColumnsOfKind(relational.KindTarget)[0]
	train, err := ml.ViewDataset(jv, targetCol, ml.JoinAll, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := ann.New(ann.Config{Hidden1: 128, Hidden2: 4, LearningRate: 1e-2, Epochs: 1, Seed: 7})
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	artifact, err := model.New(m, train.Features, nil)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(artifact, ss)
	if err != nil {
		b.Fatal(err)
	}
	n := min(ss.Fact.NumRows(), 1024)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	return engine, reqs
}

// serveConcurrency is the client parallelism of the ServeConcurrent trio:
// enough concurrent callers to fill coalescer batches, matching the
// load-harness default.
const serveConcurrency = 64

// setServeParallelism makes RunParallel drive serveConcurrency goroutines
// regardless of GOMAXPROCS (SetParallelism is a multiplier over procs).
func setServeParallelism(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((serveConcurrency + procs - 1) / procs)
}

// BenchmarkServeConcurrentScalar is the uncoalesced baseline of the serving
// gate: concurrent clients issuing independent per-request predictions
// against the MLP artifact, each paying the join gather plus a scalar
// forward pass (which allocates both hidden layers per call).
func BenchmarkServeConcurrentScalar(b *testing.B) {
	engine, reqs := benchServeEngineANNWide(b)
	var ctr atomic.Int64
	setServeParallelism(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 31
		for pb.Next() {
			if _, err := engine.PredictJoined(reqs[i%len(reqs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkServeConcurrentCoalesced is the same concurrent client stream
// through a registry slot's coalescer: callers micro-batch into one
// factorized-first-layer flush (precomputed per-dimension hidden partials +
// one dense tail pass), amortizing the forward pass across the batch. The
// benchgate pair requires ≥2x the scalar baseline's throughput.
func BenchmarkServeConcurrentCoalesced(b *testing.B) {
	engine, reqs := benchServeEngineANNWide(b)
	reg := serve.NewRegistry(serve.DefaultCoalescerConfig())
	slot, err := reg.Register("m", engine)
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	setServeParallelism(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 31
		for pb.Next() {
			if _, err := slot.Predict(reqs[i%len(reqs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkServeConcurrentFactorized drives the same concurrency at the
// linear artifact through the full slot path (snapshot resolve + coalescer
// fallthrough + factorized score). The gate pins it at 0 allocs/op: the
// whole serving stack on the factorized path is allocation-free, not just
// the score.
func BenchmarkServeConcurrentFactorized(b *testing.B) {
	engine, reqs := benchServeEngine(b)
	reg := serve.NewRegistry(serve.DefaultCoalescerConfig())
	slot, err := reg.Register("m", engine)
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	setServeParallelism(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 31
		for pb.Next() {
			if _, err := slot.Predict(reqs[i%len(reqs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkServeConcurrentHardened is the Factorized bench re-run through
// the hardened in-process entry: the same slot path plus the bounded
// admission gate and panic-to-error recovery every production request pays.
// The gate pins it at 0 allocs/op too — hardening the serving path must not
// cost the zero-alloc contract.
func BenchmarkServeConcurrentHardened(b *testing.B) {
	engine, reqs := benchServeEngine(b)
	reg := serve.NewRegistry(serve.DefaultCoalescerConfig())
	slot, err := reg.Register("m", engine)
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.NewRegistryServer(reg, serve.ServerConfig{MaxInflight: 4 * serveConcurrency})
	var ctr atomic.Int64
	setServeParallelism(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 31
		for pb.Next() {
			if _, err := srv.Predict(slot, reqs[i%len(reqs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// --- Segmented-engine benchmarks: zone-map skipping + segment morsels. ---

// segBenchTable builds a segmented fact table whose "band" column is
// clustered by row position, so every sealed segment covers a narrow value
// band and an equality predicate is provably absent from all but one or two
// segments — the selective-scan shape zone maps exist for.
func segBenchTable(b *testing.B) *relational.SegmentedTable {
	b.Helper()
	const n = 1 << 17
	schema := relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "band", Kind: relational.KindFeature, Domain: relational.NewDomain("band", 256)},
		relational.Column{Name: "a", Kind: relational.KindFeature, Domain: relational.NewDomain("a", 64)},
		relational.Column{Name: "c", Kind: relational.KindFeature, Domain: relational.NewDomain("c", 64)},
	)
	st, err := relational.NewSegmentedTable("bench", schema, relational.SegmentOptions{SegmentSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(9)
	row := make([]relational.Value, 4)
	for i := 0; i < n; i++ {
		row[0] = relational.Value(r.Intn(2))
		row[1] = relational.Value(i * 256 / n)
		row[2] = relational.Value(r.Intn(64))
		row[3] = relational.Value(r.Intn(64))
		st.MustAppendRow(row)
	}
	return st
}

// fullScanRel hides the segmented table's zone-map interface so SelectEq
// takes the generic scan path over the same physical storage — the ablation
// sibling that isolates the skip itself from any layout difference.
type fullScanRel struct{ st *relational.SegmentedTable }

func (f fullScanRel) Schema() *relational.Schema   { return f.st.Schema() }
func (f fullScanRel) NumRows() int                 { return f.st.NumRows() }
func (f fullScanRel) At(i, j int) relational.Value { return f.st.At(i, j) }
func (f fullScanRel) CopyRow(dst []relational.Value, i int) []relational.Value {
	return f.st.CopyRow(dst, i)
}
func (f fullScanRel) ScanColumn(col, from int, dst []relational.Value) int {
	return f.st.ScanColumn(col, from, dst)
}

// benchSelectEqSeg measures one selective equality scan over the clustered
// segmented table, with the zone maps consulted (skip) or hidden (full).
func benchSelectEqSeg(b *testing.B, skip bool) {
	st := segBenchTable(b)
	var src relational.Relation = fullScanRel{st}
	if skip {
		src = st
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := relational.SelectEq(src, "hit", 1, 17)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("predicate matched nothing; the bench is degenerate")
		}
	}
}

// BenchmarkSelectEqSegFullScan scans every segment for the predicate value.
func BenchmarkSelectEqSegFullScan(b *testing.B) { benchSelectEqSeg(b, false) }

// BenchmarkSelectEqSegZoneSkip consults per-segment zone maps first and
// touches only the segments whose [min, max] admits the value.
func BenchmarkSelectEqSegZoneSkip(b *testing.B) { benchSelectEqSeg(b, true) }

// benchTreeSplitZone measures a tree fit over a segmented dataset padded
// with constant columns — the shape zone-map feature skipping targets: the
// skip proves each constant feature irrelevant from its folded [min, max]
// and never gathers it during split search.
func benchTreeSplitZone(b *testing.B, skip bool) {
	const n, nConst = 40000, 6
	cols := []relational.Column{
		{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		{Name: "FK", Kind: relational.KindForeignKey, Domain: relational.NewDomain("RID", 600), Refs: "R"},
		{Name: "a", Kind: relational.KindFeature, Domain: relational.NewDomain("a", 8)},
	}
	for k := 0; k < nConst; k++ {
		cols = append(cols, relational.Column{
			Name: "const" + strconv.Itoa(k), Kind: relational.KindFeature,
			Domain: relational.NewDomain("c"+strconv.Itoa(k), 512),
		})
	}
	st, err := relational.NewSegmentedTable("bench", relational.MustSchema(cols...), relational.SegmentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(11)
	row := make([]relational.Value, len(cols))
	for i := 0; i < n; i++ {
		fk := relational.Value(r.Intn(600))
		a := relational.Value(r.Intn(8))
		row[0] = relational.Value((int(fk)/20 + int(a)) % 2)
		row[1], row[2] = fk, a
		for k := 0; k < nConst; k++ {
			row[3+k] = 300
		}
		st.MustAppendRow(row)
	}
	ds, err := ml.FromRelation(st, []int{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3, NoZoneSkip: !skip}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tree.New(cfg)
		if err := tr.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeSplitZoneFullSearch tallies every feature at every node,
// constant columns included.
func BenchmarkTreeSplitZoneFullSearch(b *testing.B) { benchTreeSplitZone(b, false) }

// BenchmarkTreeSplitZoneSkip prunes provably-constant features from the
// split search via the dataset's zone-map range.
func BenchmarkTreeSplitZoneSkip(b *testing.B) { benchTreeSplitZone(b, true) }

// benchSegParScan pins the segment-per-morsel fan-out against the
// single-slab sequential scan it replaces: both sides fold the same column
// of the same cells into the same sum, the slab in one sequential pass, the
// segmented table as one ml.ParallelFor task per segment with the partial
// sums reduced in ascending segment order — the deterministic-reduction
// discipline every segmented training path follows, so the result is
// bit-identical while the wall clock scales with cores.
func benchSegParScan(b *testing.B, parallel bool) {
	const n, segSize = 1 << 20, 1 << 15
	schema := relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "x", Kind: relational.KindFeature, Domain: relational.NewDomain("x", 4096)},
	)
	st, err := relational.NewSegmentedTable("bench", schema, relational.SegmentOptions{SegmentSize: segSize})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(13)
	block := make([]relational.Value, 0, 2*segSize)
	for i := 0; i < n; i++ {
		block = append(block, relational.Value(r.Intn(2)), relational.Value(r.Intn(4096)))
		if len(block) == cap(block) {
			st.MustAppendRows(block)
			block = block[:0]
		}
	}
	ct := relational.MaterializeColumnar(st, "slab")
	want := int64(0)
	buf := make([]relational.Value, segSize)
	for from := 0; from < n; {
		m := ct.ScanColumn(1, from, buf)
		for _, v := range buf[:m] {
			want += int64(v)
		}
		from += m
	}
	numSegs := st.NumSegments()
	partial := make([]int64, numSegs)
	bufs := make([][]relational.Value, numSegs)
	for s := range bufs {
		lo, hi := st.SegmentRows(s)
		bufs[s] = make([]relational.Value, hi-lo)
	}
	// Level the heap state left behind by earlier benches in a long sweep —
	// both sides of the pair start from the same GC baseline.
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		if parallel {
			ml.ParallelFor(numSegs, func(s int) {
				lo, _ := st.SegmentRows(s)
				buf := bufs[s]
				st.ScanColumn(1, lo, buf)
				var sum int64
				for _, v := range buf {
					sum += int64(v)
				}
				partial[s] = sum
			})
			for _, p := range partial {
				got += p
			}
		} else {
			for from := 0; from < n; {
				m := ct.ScanColumn(1, from, buf)
				for _, v := range buf[:m] {
					got += int64(v)
				}
				from += m
			}
		}
		if got != want {
			b.Fatalf("scan folded %d, want %d", got, want)
		}
	}
}

// BenchmarkSegParScanSlab scans the monolithic columnar slab sequentially.
func BenchmarkSegParScanSlab(b *testing.B) { benchSegParScan(b, false) }

// BenchmarkSegParScanSeg fans one scan task per segment and reduces the
// partial sums in segment order — bit-identical, core-scaled.
func BenchmarkSegParScanSeg(b *testing.B) { benchSegParScan(b, true) }

// --- Ablation benches for the design decisions DESIGN.md calls out. ---

// BenchmarkAblationKernelMatchCount compares the match-count RBF kernel
// against an explicit one-hot dot-product implementation on identical rows.
func BenchmarkAblationKernelMatchCount(b *testing.B) {
	feats := make([]ml.Feature, 12)
	for i := range feats {
		feats[i] = ml.Feature{Name: "f", Cardinality: 64}
	}
	enc := ml.NewEncoder(feats)
	rowA := make([]int32, len(feats))
	rowB := make([]int32, len(feats))
	for i := range rowA {
		rowA[i] = int32(i * 5 % 64)
		rowB[i] = int32(i * 3 % 64)
	}
	k, err := svm.NewKernel(svm.RBF, 0.1, len(feats))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("match-count", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += k.Eval(rowA, rowB)
		}
		_ = sink
	})
	b.Run("explicit-one-hot", func(b *testing.B) {
		va := make([]float64, enc.Dims)
		vb := make([]float64, enc.Dims)
		for j, v := range rowA {
			va[enc.Index(j, v)] = 1
		}
		for j, v := range rowB {
			vb[enc.Index(j, v)] = 1
		}
		var sink float64
		for i := 0; i < b.N; i++ {
			sq := 0.0
			for d := 0; d < enc.Dims; d++ {
				diff := va[d] - vb[d]
				sq += diff * diff
			}
			sink += math.Exp(-0.1 * sq)
		}
		_ = sink
	})
}

// BenchmarkAblationTreeSplit measures tree fitting on a large-domain FK
// (the sort-based optimal binary partition) vs a small-domain feature set,
// isolating the cost of wide categorical splits.
func BenchmarkAblationTreeSplit(b *testing.B) {
	mk := func(card int) *ml.Dataset {
		ds := &ml.Dataset{Features: []ml.Feature{
			{Name: "FK", Cardinality: card, IsFK: true},
			{Name: "x", Cardinality: 4},
		}}
		for i := 0; i < 4000; i++ {
			fk := int32(i % card)
			ds.X = append(ds.X, fk, int32(i%4))
			ds.Y = append(ds.Y, int8(fk%2))
		}
		return ds
	}
	for _, card := range []int{16, 256, 2048} {
		ds := mk(card)
		b.Run("card="+strconv.Itoa(card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
				if err := tr.Fit(ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartialJoin measures the §5.2 partial-join trade-off
// sweep (the extension experiment DESIGN.md calls out): accuracy as foreign
// features are added back one at a time.
func BenchmarkAblationPartialJoin(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		curve, err := experiments.PartialJoinTradeoff(o, "Yelp")
		if err != nil {
			b.Fatal(err)
		}
		if len(curve.Points) < 2 {
			b.Fatal("trade-off curve too short")
		}
	}
}

// BenchmarkAblationParallelMonteCarlo measures the worker-pool Monte-Carlo
// harness throughput at the ambient GOMAXPROCS (runs are pre-split RNG
// streams, so the result is identical to a sequential execution).
func BenchmarkAblationParallelMonteCarlo(b *testing.B) {
	sc, err := sim.NewOneXr(500, 40, 4, 4, 0.1, 2, sim.Skew{}, 5)
	if err != nil {
		b.Fatal(err)
	}
	learner := sim.Learner{
		Name: "tree",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
			return tr, tr.Fit(train)
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.MonteCarlo(sc, learner, 4, 7); err != nil {
			b.Fatal(err)
		}
	}
}
