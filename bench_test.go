// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the same code path as the cmd/ binaries at a reduced
// scale (absolute numbers are not the target — the JoinAll/NoJoin/NoFK
// orderings and tuple-ratio crossovers are) and reports the key findings as
// benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Environment knobs (all optional): REPRO_SCALE (default 256),
// REPRO_RUNS (default 3), REPRO_SVMCAP (default 150).
package main

import (
	"io"
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/svm"
	"repro/internal/tree"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:  envInt("REPRO_SCALE", 256),
		Effort: core.EffortFast,
		SVMCap: envInt("REPRO_SVMCAP", 150),
		Runs:   envInt("REPRO_RUNS", 3),
		Seed:   1,
		Out:    io.Discard,
	}
}

// BenchmarkTable1Stats regenerates the dataset statistics table.
func BenchmarkTable1Stats(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) != 7 {
			b.Fatal("expected 7 datasets")
		}
	}
}

// BenchmarkTable2Trees regenerates the trees + 1-NN accuracy table and
// reports the mean |JoinAll − NoJoin| gap for the gini tree — the paper's
// headline "< 1%" finding.
func BenchmarkTable2Trees(b *testing.B) {
	o := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		gap = meanViewGap(cells, "DecisionTree(gini)")
	}
	b.ReportMetric(gap, "gini-join-gap")
}

// BenchmarkTable3Kernel regenerates the SVM/ANN/NB/LR accuracy table and
// reports the RBF-SVM JoinAll−NoJoin gap.
func BenchmarkTable3Kernel(b *testing.B) {
	o := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		gap = meanViewGap(cells, "SVM(rbf)")
	}
	b.ReportMetric(gap, "rbf-join-gap")
}

// meanViewGap averages JoinAll − NoJoin test accuracy over datasets for one
// model.
func meanViewGap(cells []experiments.AccuracyCell, model string) float64 {
	byDS := map[string]map[ml.View]float64{}
	for _, c := range cells {
		if c.Model != model {
			continue
		}
		if byDS[c.Dataset] == nil {
			byDS[c.Dataset] = map[ml.View]float64{}
		}
		byDS[c.Dataset][c.View] = c.TestAcc
	}
	sum, n := 0.0, 0
	for _, views := range byDS {
		sum += math.Abs(views[ml.JoinAll] - views[ml.NoJoin])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable4Robustness regenerates the dimension-dropping sweep.
func BenchmarkTable4Robustness(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("expected 7 datasets")
		}
	}
}

// BenchmarkTable5And6Training regenerates the training-accuracy companions.
func BenchmarkTable5And6Training(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t2, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Table5(o, t2); err != nil {
			b.Fatal(err)
		}
		t3, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Table6(o, t3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Runtime regenerates the runtime study and reports the
// median NoJoin speedup across (model, dataset) pairs.
func BenchmarkFigure1Runtime(b *testing.B) {
	o := benchOptions()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if s := r.Speedup(); s > 0 {
				sum += s
				n++
			}
		}
		speedup = sum / float64(n)
	}
	b.ReportMetric(speedup, "mean-nojoin-speedup")
}

// BenchmarkFigure2OneXr regenerates the six OneXr panels.
func BenchmarkFigure2OneXr(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure2(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatal("expected panels A-F")
		}
	}
}

// BenchmarkFigure3And4NetVariance regenerates the 1-NN / RBF-SVM nR sweeps
// with their net-variance series.
func BenchmarkFigure3And4NetVariance(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure3And4(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected 1-NN and RBF panels")
		}
	}
}

// BenchmarkFigure5Skew regenerates the FK-skew panels.
func BenchmarkFigure5Skew(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure5(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 4 {
			b.Fatal("expected panels A-D")
		}
	}
}

// BenchmarkFigure6XSXR regenerates the XSXR panels.
func BenchmarkFigure6XSXR(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure6(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 4 {
			b.Fatal("expected panels A-D")
		}
	}
}

// BenchmarkFigures7to9RepOneXr regenerates the RepOneXr sweeps for all
// three models.
func BenchmarkFigures7to9RepOneXr(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figures7to9(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatal("expected 3 figures × 2 tuple ratios")
		}
	}
}

// BenchmarkFigure10Compression regenerates the FK domain-compression study.
func BenchmarkFigure10Compression(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure10(o, []int{2, 5, 10, 25})
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected Flights and Yelp")
		}
	}
}

// BenchmarkFigure11Smoothing regenerates the FK smoothing study.
func BenchmarkFigure11Smoothing(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure11(o, []float64{0, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 2 {
			b.Fatal("expected random and xr strategies")
		}
	}
}

// --- Ablation benches for the design decisions DESIGN.md calls out. ---

// BenchmarkAblationKernelMatchCount compares the match-count RBF kernel
// against an explicit one-hot dot-product implementation on identical rows.
func BenchmarkAblationKernelMatchCount(b *testing.B) {
	feats := make([]ml.Feature, 12)
	for i := range feats {
		feats[i] = ml.Feature{Name: "f", Cardinality: 64}
	}
	enc := ml.NewEncoder(feats)
	rowA := make([]int32, len(feats))
	rowB := make([]int32, len(feats))
	for i := range rowA {
		rowA[i] = int32(i * 5 % 64)
		rowB[i] = int32(i * 3 % 64)
	}
	k, err := svm.NewKernel(svm.RBF, 0.1, len(feats))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("match-count", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += k.Eval(rowA, rowB)
		}
		_ = sink
	})
	b.Run("explicit-one-hot", func(b *testing.B) {
		va := make([]float64, enc.Dims)
		vb := make([]float64, enc.Dims)
		for j, v := range rowA {
			va[enc.Index(j, v)] = 1
		}
		for j, v := range rowB {
			vb[enc.Index(j, v)] = 1
		}
		var sink float64
		for i := 0; i < b.N; i++ {
			sq := 0.0
			for d := 0; d < enc.Dims; d++ {
				diff := va[d] - vb[d]
				sq += diff * diff
			}
			sink += math.Exp(-0.1 * sq)
		}
		_ = sink
	})
}

// BenchmarkAblationTreeSplit measures tree fitting on a large-domain FK
// (the sort-based optimal binary partition) vs a small-domain feature set,
// isolating the cost of wide categorical splits.
func BenchmarkAblationTreeSplit(b *testing.B) {
	mk := func(card int) *ml.Dataset {
		ds := &ml.Dataset{Features: []ml.Feature{
			{Name: "FK", Cardinality: card, IsFK: true},
			{Name: "x", Cardinality: 4},
		}}
		for i := 0; i < 4000; i++ {
			fk := int32(i % card)
			ds.X = append(ds.X, fk, int32(i%4))
			ds.Y = append(ds.Y, int8(fk%2))
		}
		return ds
	}
	for _, card := range []int{16, 256, 2048} {
		ds := mk(card)
		b.Run("card="+strconv.Itoa(card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
				if err := tr.Fit(ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartialJoin measures the §5.2 partial-join trade-off
// sweep (the extension experiment DESIGN.md calls out): accuracy as foreign
// features are added back one at a time.
func BenchmarkAblationPartialJoin(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		curve, err := experiments.PartialJoinTradeoff(o, "Yelp")
		if err != nil {
			b.Fatal(err)
		}
		if len(curve.Points) < 2 {
			b.Fatal("trade-off curve too short")
		}
	}
}

// BenchmarkAblationParallelMonteCarlo measures the worker-pool Monte-Carlo
// harness throughput at the ambient GOMAXPROCS (runs are pre-split RNG
// streams, so the result is identical to a sequential execution).
func BenchmarkAblationParallelMonteCarlo(b *testing.B) {
	sc, err := sim.NewOneXr(500, 40, 4, 4, 0.1, 2, sim.Skew{}, 5)
	if err != nil {
		b.Fatal(err)
	}
	learner := sim.Learner{
		Name: "tree",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
			return tr, tr.Fit(train)
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.MonteCarlo(sc, learner, 4, 7); err != nil {
			b.Fatal(err)
		}
	}
}
