// Integration tests asserting the paper's headline claims end-to-end, at
// reduced scale. These are the "does the reproduction reproduce" checks;
// per-module behaviour is tested inside each internal package.
package main

import (
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/svm"
	"repro/internal/tree"
)

// claimOptions is larger than unit-test scale but still seconds-fast.
func claimOptions() experiments.Options {
	return experiments.Options{
		Scale:  256,
		Effort: core.EffortFast,
		SVMCap: 150,
		Runs:   4,
		Seed:   7,
		Out:    io.Discard,
	}
}

// Claim 1 (§3.3): for the decision tree, the same set of joins is safe to
// avoid as for linear models — NoJoin tracks JoinAll within 1% on every
// dataset whose tuple ratios exceed the tree threshold.
func TestClaimTreeJoinsSafeToAvoid(t *testing.T) {
	o := claimOptions()
	cells, err := experiments.Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	byDS := map[string][2]float64{}
	for _, c := range cells {
		if c.Model != "DecisionTree(gini)" {
			continue
		}
		v := byDS[c.Dataset]
		switch c.View {
		case ml.JoinAll:
			v[0] = c.TestAcc
		case ml.NoJoin:
			v[1] = c.TestAcc
		}
		byDS[c.Dataset] = v
	}
	for ds, v := range byDS {
		if ds == "Yelp" {
			continue // tuple ratio 2.5 — the known exception
		}
		if gap := v[0] - v[1]; gap > 0.015 {
			t.Errorf("dataset %s: tree NoJoin %v lags JoinAll %v beyond 1%%", ds, v[1], v[0])
		}
	}
}

// Claim 2 (§3.3, Yelp): where the join is NOT safe to avoid, linear models
// lose much more accuracy than the decision tree.
func TestClaimLinearLosesMoreAtLowTupleRatio(t *testing.T) {
	o := claimOptions()
	spec, err := dataset.SpecByName("Yelp")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, o.Scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 11)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(s core.Spec) float64 {
		ja, err := core.Run(env, ml.JoinAll, s, 13)
		if err != nil {
			t.Fatal(err)
		}
		nj, err := core.Run(env, ml.NoJoin, s, 13)
		if err != nil {
			t.Fatal(err)
		}
		return ja.TestAcc - nj.TestAcc
	}
	treeGap := gap(core.TreeSpec(tree.Gini, o.Effort))
	lrGap := gap(core.LogRegSpec(o.Effort))
	if lrGap < treeGap+0.02 {
		t.Fatalf("linear Yelp drop (%v) must exceed tree drop (%v) — the paper's key contrast", lrGap, treeGap)
	}
}

// Claim 3 (§4.1, Figure 2B): in the OneXr worst case, the tree's NoJoin
// error tracks JoinAll even at tuple ratio ≈ 3, where 1-NN has long since
// deviated.
func TestClaimSimulationThresholds(t *testing.T) {
	o := claimOptions()
	treeLearner := sim.Learner{
		Name: "tree",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
			return tr, tr.Fit(train)
		},
	}
	knnLearner := sim.Learner{
		Name: "1-NN",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			k := knn.New()
			return k, k.Fit(train)
		},
	}
	// Tuple ratio 1000/330 ≈ 3.
	sc, err := sim.NewOneXr(1000, 330, 4, 4, 0.1, 2, sim.Skew{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	treeRes, err := sim.MonteCarlo(sc, treeLearner, o.Runs, 19)
	if err != nil {
		t.Fatal(err)
	}
	knnRes, err := sim.MonteCarlo(sc, knnLearner, o.Runs, 19)
	if err != nil {
		t.Fatal(err)
	}
	treeGap := treeRes.Views[ml.NoJoin].AvgTestError - treeRes.Views[ml.JoinAll].AvgTestError
	knnGap := knnRes.Views[ml.NoJoin].AvgTestError - knnRes.Views[ml.JoinAll].AvgTestError
	if math.Abs(treeGap) > 0.03 {
		t.Fatalf("tree gap at tuple ratio 3 should be tiny, got %v", treeGap)
	}
	if knnGap < 0.05 {
		t.Fatalf("1-NN should have deviated well before tuple ratio 3, gap %v", knnGap)
	}
}

// Claim 4 (§5, Figure 4): the RBF-SVM's NoJoin deviation at low tuple
// ratios is carried by net variance (extra overfitting), not bias.
func TestClaimNetVarianceExplainsRBFGap(t *testing.T) {
	o := claimOptions()
	svmLearner := sim.Learner{
		Name: "rbf",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			s, err := svm.New(svm.Config{Kernel: svm.RBF, C: 10, Gamma: 0.1, SubsampleCap: o.SVMCap, Seed: seed})
			if err != nil {
				return nil, err
			}
			return s, s.Fit(train)
		},
	}
	sc, err := sim.NewOneXr(1000, 330, 4, 4, 0.1, 2, sim.Skew{}, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.MonteCarlo(sc, svmLearner, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	joinVar := res.Views[ml.JoinAll].NetVariance
	noJoinVar := res.Views[ml.NoJoin].NetVariance
	if noJoinVar <= joinVar {
		t.Fatalf("NoJoin net variance (%v) must exceed JoinAll's (%v) at low tuple ratio", noJoinVar, joinVar)
	}
}

// Claim 5 (§3.3, Figure 1): avoiding the join speeds up the end-to-end
// pipeline; NB with backward selection benefits most.
func TestClaimNoJoinIsFaster(t *testing.T) {
	o := claimOptions()
	spec, err := dataset.SpecByName("Movies") // widest dimension tables
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, o.Scale, 31)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 37)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := core.RuntimeStudy(env, core.NaiveBayesBFSSpec(), 41)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Speedup() < 1.5 {
		t.Fatalf("NB-BFS NoJoin speedup %vx; expected well above 1.5x on wide dimensions", rc.Speedup())
	}
}

// Claim 6 (§6.2, Figure 11): X_R-based smoothing beats random reassignment
// when foreign features carry the signal.
func TestClaimXRSmoothingBeatsRandom(t *testing.T) {
	o := claimOptions()
	o.Runs = 6
	panels, err := experiments.Figure11(o, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	var randomErr, xrErr float64
	for _, p := range panels {
		switch p.Strategy {
		case "random":
			randomErr = p.Points[0].Errors[ml.NoJoin]
		case "xr":
			xrErr = p.Points[0].Errors[ml.NoJoin]
		}
	}
	if xrErr >= randomErr {
		t.Fatalf("X_R smoothing (%v) must beat random (%v) at gamma 0.5", xrErr, randomErr)
	}
}

// Claim 7: the logistic regression Decision scores and the LR overfitting
// mechanism line up — dropping the FK's domain below the linear threshold
// makes LR overfit where the tree stays calm (training-vs-test gap).
func TestClaimLinearOverfitsOnWideFK(t *testing.T) {
	gen := func(n int, seed uint64) *ml.Dataset {
		// 600-value FK, ratio ≈ 1.7: far below the linear threshold.
		r := rng.New(seed)
		const nR = 600
		ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: nR, IsFK: true}}}
		for i := 0; i < n; i++ {
			fk := r.Intn(nR)
			y := int8(fk % 2)
			if r.Bernoulli(0.25) {
				y = 1 - y
			}
			ds.X = append(ds.X, int32(fk))
			ds.Y = append(ds.Y, y)
		}
		return ds
	}
	train := gen(1000, 43)
	test := gen(4000, 47)
	lr := linear.NewLogReg(linear.LogRegConfig{Seed: 53})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	overfit := ml.Accuracy(lr, train) - ml.Accuracy(lr, test)
	if overfit < 0.05 {
		t.Fatalf("LR should visibly overfit a ratio-1.7 FK: gap %v", overfit)
	}
}
