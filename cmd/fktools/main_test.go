package main

import "testing"

func TestRunRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{},                  // nothing to do
		{"-figure", "9"},    // only 10 and 11 live here
		{"-budgets", "a,b"}, // unparsable ints
		{"-figure", "10", "-budgets", "x"},
		{"-figure", "11", "-gammas", "x"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("2, 5,10")
	if err != nil || len(ints) != 3 || ints[2] != 10 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	floats, err := parseFloats("0.5,0.9")
	if err != nil || len(floats) != 2 || floats[1] != 0.9 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if got, err := parseInts(""); got != nil || err != nil {
		t.Fatal("empty string must yield nil, nil")
	}
}
