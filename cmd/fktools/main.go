// Command fktools regenerates the paper's §6 foreign-key practicality
// experiments: Figure 10 (lossy FK domain compression on Flights and Yelp,
// random hashing vs. the supervised sort-based method) and Figure 11 (FK
// smoothing of values unseen in training: random reassignment vs. the
// X_R-based minimum-l0 reassignment).
//
// Usage:
//
//	fktools -figure 10 [-budgets 2,5,10,25,50] [-scale 64]
//	fktools -figure 11 [-gammas 0,0.25,0.5,0.75,0.9] [-runs 10]
//	fktools -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fktools:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fktools", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure to regenerate (10 or 11)")
	all := fs.Bool("all", false, "regenerate both figures")
	budgets := fs.String("budgets", "", "comma-separated compression budgets for figure 10")
	gammas := fs.String("gammas", "", "comma-separated unseen-FK fractions for figure 11")
	scale := fs.Int("scale", 64, "dataset scale divisor (figure 10)")
	runs := fs.Int("runs", 10, "Monte-Carlo runs (figure 11)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := experiments.Options{Scale: *scale, Runs: *runs, Seed: *seed, Out: os.Stdout}

	bl, err := parseInts(*budgets)
	if err != nil {
		return fmt.Errorf("-budgets: %w", err)
	}
	gl, err := parseFloats(*gammas)
	if err != nil {
		return fmt.Errorf("-gammas: %w", err)
	}

	if *all {
		if _, err := experiments.Figure10(o, bl); err != nil {
			return err
		}
		fmt.Println()
		_, err := experiments.Figure11(o, gl)
		return err
	}
	switch *figure {
	case 10:
		_, err := experiments.Figure10(o, bl)
		return err
	case 11:
		_, err := experiments.Figure11(o, gl)
		return err
	default:
		return fmt.Errorf("nothing to do: pass -figure 10, -figure 11, or -all")
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
