// Command hamletd is the online inference server: it loads a model artifact
// trained by `hamlet -train`, regenerates the star schema the model was
// trained on (dimension tables are what factorized serving precomputes
// against), and serves predictions over HTTP without ever materializing the
// KFK join.
//
// Usage:
//
//	hamlet  -train -dataset Movies -spec "NaiveBayes(BFS)" -model m.bin
//	hamletd -model m.bin [-addr 127.0.0.1:8080]
//
// Dataset, scale, and seed default from the artifact's metadata, so a
// hamlet-trained model serves with no further flags; pass -dataset/-scale/
// -seed to override. -addr accepts port 0 for an OS-assigned port (the
// bound address is printed on startup).
//
// Endpoints: POST /predict, POST /predict_batch, GET /healthz, GET /stats.
// Linear-family models (Naive Bayes, logistic regression, linear SVM) are
// served factorized — one precomputed partial-score lookup per dimension
// table per request; others fall back to per-request gather through the
// join view. A ?mode=factorized|joined query parameter pins the path for
// A/B comparisons.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hamletd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	srv, addr, err := build(args, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hamletd listening on %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// build parses flags, loads the artifact, regenerates the star schema, and
// assembles the HTTP server — everything except binding the socket, so
// tests can drive the handler without a real listener.
func build(args []string, out *os.File) (*serve.Server, string, error) {
	fs := flag.NewFlagSet("hamletd", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model artifact path (required; train with hamlet -train)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 for an OS-assigned port)")
	datasetName := fs.String("dataset", "", "dataset name (default: artifact metadata)")
	scale := fs.Int("scale", 0, "dataset scale divisor (default: artifact metadata)")
	seed := fs.Uint64("seed", 0, "dataset generation seed (default: artifact metadata)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *modelPath == "" {
		return nil, "", fmt.Errorf("-model <path> is required")
	}
	m, err := model.Load(*modelPath)
	if err != nil {
		return nil, "", err
	}

	name := *datasetName
	if name == "" {
		name = m.Meta[core.MetaDataset]
		if name == "" {
			return nil, "", fmt.Errorf("artifact has no dataset metadata; pass -dataset")
		}
	}
	sc := *scale
	if !explicit["scale"] {
		sc = 64
		if s := m.Meta[core.MetaScale]; s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				sc = v
			}
		}
	}
	sd := *seed
	if !explicit["seed"] {
		sd = 1
		if s := m.Meta[core.MetaSeed]; s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				sd = v
			}
		}
	}

	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, "", err
	}
	ss, err := dataset.Generate(spec, sc, sd)
	if err != nil {
		return nil, "", err
	}
	engine, err := serve.NewEngine(m, ss)
	if err != nil {
		return nil, "", err
	}
	mode := "joined (gather fallback)"
	if engine.Factorized() {
		mode = "factorized (per-dimension partial scores)"
	}
	fmt.Fprintf(out, "hamletd: serving %s (%s) on %s scale %d seed %d — %s, %d inputs, %d dimensions\n",
		m.Kind, m.Fingerprint().Short(), name, sc, sd, mode, len(engine.InputFeatures()), engine.NumDimensions())
	return serve.NewServer(engine), *addr, nil
}
