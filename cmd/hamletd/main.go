// Command hamletd is the online inference server: it loads a model artifact
// trained by `hamlet -train`, regenerates the star schema the model was
// trained on (dimension tables are what factorized serving precomputes
// against), and serves predictions over HTTP without ever materializing the
// KFK join.
//
// Usage:
//
//	hamlet  -train -dataset Movies -spec "NaiveBayes(BFS)" -model m.bin
//	hamletd -model m.bin [-addr 127.0.0.1:8080]
//
// Dataset, scale, and seed default from the artifact's metadata, so a
// hamlet-trained model serves with no further flags; pass -dataset/-scale/
// -seed to override. -addr accepts port 0 for an OS-assigned port (the
// bound address is printed on startup).
//
// Endpoints: POST /predict, POST /predict_batch, GET /models, POST /swap,
// GET /healthz, GET /stats, GET /metrics (Prometheus text exposition covering
// serving, segment cache, and training spans; -pprof additionally mounts
// net/http/pprof under /debug/pprof/). The artifact boots into registry slot
// "default";
// POST /swap {"model":"default","path":"new.bin"} hot-swaps it under live
// traffic (in-flight requests finish against their version) and
// {"model":"default","version":N} rolls back. Linear-family models
// (Naive Bayes, logistic regression, linear SVM) are served factorized — one
// precomputed partial-score lookup per dimension table per request; others
// fall back to per-request gather through the join view, with concurrent
// /predict calls micro-batched by the request coalescer (tune with
// -coalesce-window/-coalesce-batch). A ?mode=factorized|joined query
// parameter pins the path for A/B comparisons.
//
// The daemon exits non-zero when the listen address cannot be bound, and
// drains in-flight connections for up to -drain on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hamletd:", err)
		os.Exit(1)
	}
}

// daemon is a built-but-unbound server: everything except the socket.
// handler is what actually serves — srv.Handler(), optionally wrapped with
// the pprof mux when -pprof is set.
type daemon struct {
	srv     *serve.Server
	handler http.Handler
	addr    string
	drain   time.Duration

	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

// run binds the socket and serves until the context is cancelled, then
// drains connections for up to the -drain timeout before returning.
func run(ctx context.Context, args []string, out *os.File) error {
	d, err := build(args, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", d.addr, err)
	}
	fmt.Fprintf(out, "hamletd listening on %s\n", ln.Addr())
	// Server-side timeouts are load-shedding, not politeness: without a
	// ReadHeaderTimeout a slowloris client holds a connection (and its
	// handler goroutine budget) forever, and without a WriteTimeout a dead
	// reader pins response buffers. Defaults are set in build(), flag-tunable.
	hs := &http.Server{
		Handler:           d.handler,
		ReadTimeout:       d.readTimeout,
		ReadHeaderTimeout: d.readHeaderTimeout,
		WriteTimeout:      d.writeTimeout,
		IdleTimeout:       d.idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "hamletd: shutting down, draining for up to %s\n", d.drain)
	sctx, cancel := context.WithTimeout(context.Background(), d.drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	<-errc // Serve has returned ErrServerClosed
	return nil
}

// build parses flags, loads the artifact, regenerates the star schema, and
// assembles the HTTP server — everything except binding the socket, so
// tests can drive the handler without a real listener.
func build(args []string, out *os.File) (*daemon, error) {
	fs := flag.NewFlagSet("hamletd", flag.ContinueOnError)
	modelPath := fs.String("model", "", "model artifact path (required; train with hamlet -train)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 for an OS-assigned port)")
	datasetName := fs.String("dataset", "", "dataset name (default: artifact metadata)")
	scale := fs.Int("scale", 0, "dataset scale divisor (default: artifact metadata)")
	seed := fs.Uint64("seed", 0, "dataset generation seed (default: artifact metadata)")
	drain := fs.Duration("drain", 5*time.Second, "connection drain timeout on shutdown")
	window := fs.Duration("coalesce-window", serve.DefaultCoalescerConfig().Window,
		"request coalescer wait window (0 disables coalescing)")
	coalesceBatch := fs.Int("coalesce-batch", serve.DefaultCoalescerConfig().MaxBatch,
		"request coalescer max batch size")
	maxBody := fs.Int64("max-body", serve.DefaultServerConfig().MaxBodyBytes,
		"max request body bytes (oversized requests get 413)")
	maxBatch := fs.Int("max-batch", serve.DefaultServerConfig().MaxBatchLen,
		"max /predict_batch inputs per request (longer batches get 413)")
	maxInflight := fs.Int("max-inflight", serve.DefaultMaxInflight,
		"max concurrently admitted predict requests; excess sheds with 429 (-1 = unlimited)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"max time to read a full request including body (0 = unlimited)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second,
		"max time to read request headers — the slowloris guard (0 = read-timeout)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second,
		"max time to write a response (0 = unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second,
		"keep-alive idle connection timeout (0 = read-timeout)")
	chaosPanicEvery := fs.Int("chaos-panic-every", 0,
		"panic on every Nth predict request (chaos testing only; 0 = off)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *modelPath == "" {
		return nil, fmt.Errorf("-model <path> is required")
	}
	m, err := model.Load(*modelPath)
	if err != nil {
		return nil, err
	}

	name := *datasetName
	if name == "" {
		name = m.Meta[core.MetaDataset]
		if name == "" {
			return nil, fmt.Errorf("artifact has no dataset metadata; pass -dataset")
		}
	}
	sc := *scale
	if !explicit["scale"] {
		sc = 64
		if s := m.Meta[core.MetaScale]; s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				sc = v
			}
		}
	}
	sd := *seed
	if !explicit["seed"] {
		sd = 1
		if s := m.Meta[core.MetaSeed]; s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				sd = v
			}
		}
	}

	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	ss, err := dataset.Generate(spec, sc, sd)
	if err != nil {
		return nil, err
	}
	engine, err := serve.NewEngine(m, ss)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry(serve.CoalescerConfig{MaxBatch: *coalesceBatch, Window: *window})
	if _, err := reg.Register("default", engine); err != nil {
		return nil, err
	}
	mode := "joined (gather fallback)"
	if engine.Factorized() {
		mode = "factorized (per-dimension partial scores)"
	}
	fmt.Fprintf(out, "hamletd: serving %s (%s) on %s scale %d seed %d — %s, %d inputs, %d dimensions\n",
		m.Kind, m.Fingerprint().Short(), name, sc, sd, mode, len(engine.InputFeatures()), engine.NumDimensions())
	srv := serve.NewRegistryServer(reg, serve.ServerConfig{
		MaxBodyBytes:    *maxBody,
		MaxBatchLen:     *maxBatch,
		MaxInflight:     *maxInflight,
		ChaosPanicEvery: *chaosPanicEvery,
	})
	if *chaosPanicEvery > 0 {
		fmt.Fprintf(out, "hamletd: CHAOS MODE — panicking on every %d-th predict request\n", *chaosPanicEvery)
	}
	var handler http.Handler = srv.Handler()
	if *pprofOn {
		// The profiling surface is opt-in: a production scrape target should
		// not expose heap dumps and CPU profiles by default. Handlers are
		// mounted explicitly rather than via the package's DefaultServeMux
		// side effect, which this daemon never serves.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintln(out, "hamletd: pprof enabled at /debug/pprof/")
	}
	return &daemon{
		srv: srv, handler: handler, addr: *addr, drain: *drain,
		readTimeout:       *readTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
	}, nil
}
