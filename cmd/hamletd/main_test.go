package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
)

// trainArtifact trains a tiny NB model on Movies and saves it, returning the
// artifact path — the same flow `hamlet -train` runs.
func trainArtifact(t *testing.T) string {
	t.Helper()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.BuildArtifact(env, core.NaiveBayesBFSSpec(), 1, map[string]string{
		core.MetaDataset: "Movies",
		core.MetaScale:   "4096",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "movies.model")
	if err := model.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildAndServe drives the full daemon wiring: artifact → flags →
// engine → HTTP handler, with dataset/scale defaulted from metadata.
func TestBuildAndServe(t *testing.T) {
	path := trainArtifact(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	srv, addr, err := build([]string{"-model", path, "-addr", "127.0.0.1:0"}, devnull)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", addr)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	inputs := make([]map[string]int32, 0, 2)
	obj := map[string]int32{}
	for _, f := range srv.Engine().InputFeatures() {
		obj[f.Name] = 0
	}
	inputs = append(inputs, obj, obj)
	raw, _ := json.Marshal(map[string]any{"inputs": inputs})
	post, err := http.Post(ts.URL+"/predict_batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("/predict_batch: %d", post.StatusCode)
	}
	var got struct {
		Predictions []int8 `json:"predictions"`
		N           int    `json:"n"`
		Mode        string `json:"mode"`
	}
	if err := json.NewDecoder(post.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || len(got.Predictions) != 2 || got.Mode != "factorized" {
		t.Fatalf("batch response %+v", got)
	}
}

// TestBuildErrors covers flag and artifact validation.
func TestBuildErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if _, _, err := build(nil, devnull); err == nil {
		t.Fatal("missing -model accepted")
	}
	if _, _, err := build([]string{"-model", "/nonexistent/m.bin"}, devnull); err == nil {
		t.Fatal("nonexistent artifact accepted")
	}
	// A model bound to the wrong dataset must fail with a schema mismatch.
	path := trainArtifact(t)
	if _, _, err := build([]string{"-model", path, "-dataset", "Flights"}, devnull); err == nil {
		t.Fatal("wrong dataset accepted")
	}
}
