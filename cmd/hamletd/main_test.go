package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
)

// trainArtifact trains a tiny NB model on Movies and saves it, returning the
// artifact path — the same flow `hamlet -train` runs.
func trainArtifact(t *testing.T) string {
	t.Helper()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.BuildArtifact(env, core.NaiveBayesBFSSpec(), 1, map[string]string{
		core.MetaDataset: "Movies",
		core.MetaScale:   "4096",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "movies.model")
	if err := model.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestBuildAndServe drives the full daemon wiring: artifact → flags →
// engine → HTTP handler, with dataset/scale defaulted from metadata.
func TestBuildAndServe(t *testing.T) {
	path := trainArtifact(t)
	d, err := build([]string{"-model", path, "-addr", "127.0.0.1:0"}, devNull(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", d.addr)
	}
	ts := httptest.NewServer(d.srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	inputs := make([]map[string]int32, 0, 2)
	obj := map[string]int32{}
	for _, f := range d.srv.Engine().InputFeatures() {
		obj[f.Name] = 0
	}
	inputs = append(inputs, obj, obj)
	raw, _ := json.Marshal(map[string]any{"inputs": inputs})
	post, err := http.Post(ts.URL+"/predict_batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("/predict_batch: %d", post.StatusCode)
	}
	var got struct {
		Predictions []int8 `json:"predictions"`
		N           int    `json:"n"`
		Mode        string `json:"mode"`
	}
	if err := json.NewDecoder(post.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || len(got.Predictions) != 2 || got.Mode != "factorized" {
		t.Fatalf("batch response %+v", got)
	}
}

// TestBuildErrors covers flag and artifact validation.
func TestBuildErrors(t *testing.T) {
	out := devNull(t)
	if _, err := build(nil, out); err == nil {
		t.Fatal("missing -model accepted")
	}
	if _, err := build([]string{"-model", "/nonexistent/m.bin"}, out); err == nil {
		t.Fatal("nonexistent artifact accepted")
	}
	// A model bound to the wrong dataset must fail with a schema mismatch.
	path := trainArtifact(t)
	if _, err := build([]string{"-model", path, "-dataset", "Flights"}, out); err == nil {
		t.Fatal("wrong dataset accepted")
	}
}

// TestRunGracefulShutdown boots the real daemon on an OS-assigned port,
// confirms it serves, cancels the run context (the SIGINT/SIGTERM path), and
// requires run to drain and return nil promptly.
func TestRunGracefulShutdown(t *testing.T) {
	path := trainArtifact(t)
	outPath := filepath.Join(t.TempDir(), "out")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", path, "-addr", "127.0.0.1:0", "-drain", "2s"}, out)
	}()

	// The bound address is printed once the socket is up.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never printed its listen address")
		}
		raw, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if rest, ok := strings.CutPrefix(line, "hamletd listening on "); ok {
				url = "http://" + strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

// TestRunBindFailure occupies a port and requires run to fail fast with a
// bind error rather than serving or hanging.
func TestRunBindFailure(t *testing.T) {
	path := trainArtifact(t)
	ln := httptest.NewServer(http.NotFoundHandler())
	defer ln.Close()
	addr := strings.TrimPrefix(ln.URL, "http://")

	err := run(context.Background(), []string{"-model", path, "-addr", addr}, devNull(t))
	if err == nil || !strings.Contains(err.Error(), "bind") {
		t.Fatalf("want bind error, got %v", err)
	}
}

// TestPprofGating pins the -pprof flag: off by default (404 on the debug
// surface), mounted when set — and the wrapped handler still serves the
// telemetry and prediction endpoints.
func TestPprofGating(t *testing.T) {
	path := trainArtifact(t)
	out := devNull(t)

	d, err := build([]string{"-model", path}, out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	dp, err := build([]string{"-model", path, "-pprof"}, out)
	if err != nil {
		t.Fatal(err)
	}
	tsp := httptest.NewServer(dp.handler)
	defer tsp.Close()
	for url, want := range map[string]string{
		"/debug/pprof/": "text/html",
		"/metrics":      "text/plain; version=0.0.4",
		"/healthz":      "application/json",
	} {
		resp, err := http.Get(tsp.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with -pprof: status %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, want) {
			t.Fatalf("%s content type %q, want prefix %q", url, ct, want)
		}
	}
}
