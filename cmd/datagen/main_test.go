package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{},                                  // nothing to do
		{"-dataset", "nope"},                // unknown dataset
		{"-dataset", "Yelp", "-scale", "0"}, // invalid scale
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}

func TestListDoesNotWrite(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratesCSVFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dataset", "Walmart", "-scale", "1024", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fact + 2 dimension tables.
	if len(entries) != 3 {
		t.Fatalf("want 3 CSV files, got %d", len(entries))
	}
	foundFact := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			t.Fatalf("non-CSV output %q", e.Name())
		}
		if e.Name() == "Walmart_Walmart.csv" {
			foundFact = true
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			head := strings.SplitN(string(data), "\n", 2)[0]
			if !strings.HasPrefix(head, "Y,") {
				t.Fatalf("fact CSV header = %q", head)
			}
		}
	}
	if !foundFact {
		t.Fatal("fact table CSV missing")
	}
}
