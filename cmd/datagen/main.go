// Command datagen materializes the synthetic stand-ins for the paper's
// seven star-schema datasets as CSV files — one file per table — so the
// data can be inspected, loaded into a database, or consumed by external
// tools. Tuple ratios are preserved at every scale.
//
// Usage:
//
//	datagen -dataset Yelp -scale 64 -out ./data
//	datagen -all -scale 256 -out ./data
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/relational"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	name := fs.String("dataset", "", "dataset to generate (see -list)")
	all := fs.Bool("all", false, "generate every dataset")
	list := fs.Bool("list", false, "list available datasets and exit")
	scale := fs.Int("scale", 64, "divide dataset cardinalities by this factor")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", ".", "output directory (created if missing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range dataset.Specs() {
			fmt.Printf("%-8s nS=%-8d q=%d\n", s.Name, s.NS, len(s.Dims))
		}
		return nil
	}

	var specs []dataset.Spec
	switch {
	case *all:
		specs = dataset.Specs()
	case *name != "":
		s, err := dataset.SpecByName(*name)
		if err != nil {
			return err
		}
		specs = []dataset.Spec{s}
	default:
		return fmt.Errorf("nothing to do: pass -dataset NAME, -all, or -list")
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, s := range specs {
		ss, err := dataset.Generate(s, *scale, *seed)
		if err != nil {
			return err
		}
		if err := writeTable(*out, s.Name, ss.Fact); err != nil {
			return err
		}
		for _, dim := range ss.Dimensions {
			if err := writeTable(*out, s.Name, dim); err != nil {
				return err
			}
		}
		st := dataset.Describe(s.Name, ss)
		fmt.Printf("%s: fact %d rows, %d dimension table(s)\n", s.Name, st.NS, st.Q)
	}
	return nil
}

// writeTable writes one table as <dir>/<dataset>_<table>.csv.
func writeTable(dir, datasetName string, t *relational.Table) error {
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", datasetName, t.Name))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := relational.WriteCSV(f, t); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
