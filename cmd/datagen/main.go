// Command datagen materializes the synthetic stand-ins for the paper's
// seven star-schema datasets as CSV files — one file per table — so the
// data can be inspected, loaded into a database, or consumed by external
// tools. Tuple ratios are preserved at every scale.
//
// Usage:
//
//	datagen -dataset Yelp -scale 64 -out ./data
//	datagen -all -scale 256 -out ./data
//	datagen -list
//
// -verify round-trips every written CSV back through ReadCSVInto into a
// segmented columnar table and compares it cell-for-cell against the
// generated source — the ingestion path CI smoke-tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/relational"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	name := fs.String("dataset", "", "dataset to generate (see -list)")
	all := fs.Bool("all", false, "generate every dataset")
	list := fs.Bool("list", false, "list available datasets and exit")
	scale := fs.Int("scale", 64, "divide dataset cardinalities by this factor")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", ".", "output directory (created if missing)")
	verify := fs.Bool("verify", false, "re-ingest each written CSV into a segmented columnar table and compare against the source")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range dataset.Specs() {
			fmt.Printf("%-8s nS=%-8d q=%d\n", s.Name, s.NS, len(s.Dims))
		}
		return nil
	}

	var specs []dataset.Spec
	switch {
	case *all:
		specs = dataset.Specs()
	case *name != "":
		s, err := dataset.SpecByName(*name)
		if err != nil {
			return err
		}
		specs = []dataset.Spec{s}
	default:
		return fmt.Errorf("nothing to do: pass -dataset NAME, -all, or -list")
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, s := range specs {
		ss, err := dataset.Generate(s, *scale, *seed)
		if err != nil {
			return err
		}
		tables := []*relational.Table{ss.Fact}
		for _, dim := range ss.Dimensions {
			tables = append(tables, dim)
		}
		for _, t := range tables {
			path, err := writeTable(*out, s.Name, t)
			if err != nil {
				return err
			}
			if *verify {
				if err := verifyCSV(path, t); err != nil {
					return err
				}
			}
		}
		st := dataset.Describe(s.Name, ss)
		fmt.Printf("%s: fact %d rows, %d dimension table(s)\n", s.Name, st.NS, st.Q)
		if *verify {
			fmt.Printf("%s: all tables round-trip through segmented ingestion\n", s.Name)
		}
	}
	return nil
}

// verifyCSV re-reads a written CSV through the segmented bulk-ingestion path
// (a small segment size forces several seal boundaries even on scaled-down
// tables) and compares every cell against the in-memory source.
func verifyCSV(path string, src *relational.Table) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := relational.NewSegmentedTable(src.Name, src.Schema(), relational.SegmentOptions{SegmentSize: 1024})
	if err != nil {
		return err
	}
	if err := relational.ReadCSVInto(f, st); err != nil {
		return fmt.Errorf("verifying %s: %w", path, err)
	}
	if st.NumRows() != src.NumRows() {
		return fmt.Errorf("verifying %s: re-ingested %d rows, source has %d", path, st.NumRows(), src.NumRows())
	}
	w := src.Schema().Width()
	a := make([]relational.Value, w)
	b := make([]relational.Value, w)
	for i := 0; i < src.NumRows(); i++ {
		src.CopyRow(a, i)
		st.CopyRow(b, i)
		for j := range a {
			if a[j] != b[j] {
				return fmt.Errorf("verifying %s: row %d column %d: re-ingested %d, source %d", path, i, j, b[j], a[j])
			}
		}
	}
	return nil
}

// writeTable writes one table as <dir>/<dataset>_<table>.csv and returns
// the path.
func writeTable(dir, datasetName string, t *relational.Table) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", datasetName, t.Name))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := relational.WriteCSV(f, t); err != nil {
		return "", fmt.Errorf("writing %s: %w", path, err)
	}
	return path, f.Close()
}
