package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineText = `goos: linux
cpu: whatever
BenchmarkNBFitRowAtATime-8    	      10	  1000000 ns/op	  100 B/op	 1 allocs/op
BenchmarkNBFitRowAtATime-8    	      10	  1200000 ns/op	  100 B/op	 1 allocs/op
BenchmarkNBFitRowAtATime-8    	      10	  1100000 ns/op	  100 B/op	 1 allocs/op
BenchmarkNBFitColumnar-8      	      10	   300000 ns/op	  100 B/op	 1 allocs/op
BenchmarkServeFactorized-8    	     100	      500 ns/op	    0 B/op	 0 allocs/op
PASS
`

// segPairLines satisfies the zone-map, segmented-parity, and approximate-tier
// groups the default gate includes: zone skips clear 1.5x, the parity pairs
// sit at 1.0 (enough for the group's @0.95 bar), and the error-cache SMO /
// fused-Adam kernels beat their exact columnar siblings at 2.5x.
const segPairLines = `
BenchmarkSVMFitErrorCache      	      10	   400000 ns/op
BenchmarkANNFitFusedAdam       	      10	   400000 ns/op
BenchmarkSelectEqSegFullScan   	      10	  2000000 ns/op
BenchmarkSelectEqSegZoneSkip   	      10	   100000 ns/op
BenchmarkTreeSplitZoneFullSearch	      10	  2000000 ns/op
BenchmarkTreeSplitZoneSkip     	      10	  1200000 ns/op
BenchmarkSegParScanSlab        	      10	  1000000 ns/op
BenchmarkSegParScanSeg         	      10	  1000000 ns/op
BenchmarkNBFitColumnar         	      10	   300000 ns/op
BenchmarkNBFitSegmented        	      10	   300000 ns/op
BenchmarkTreeSplitColumnar     	      10	  1000000 ns/op
BenchmarkTreeSplitSegmented    	      10	  1000000 ns/op
BenchmarkServeConcurrentScalar 	      10	  2000000 ns/op	    1056 B/op	       2 allocs/op
BenchmarkServeConcurrentCoalesced	      10	   900000 ns/op	      44 B/op	       0 allocs/op
BenchmarkServeConcurrentFactorized	     100	       20 ns/op	       0 B/op	       0 allocs/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMediansAndSuffixStripping(t *testing.T) {
	m, allocs, err := parseBench(strings.NewReader(baselineText))
	if err != nil {
		t.Fatal(err)
	}
	if got := median(allocs["BenchmarkNBFitRowAtATime"]); got != 1 {
		t.Fatalf("allocs median = %v, want 1", got)
	}
	if got := median(m["BenchmarkNBFitRowAtATime"]); got != 1100000 {
		t.Fatalf("median = %v, want 1100000", got)
	}
	if got := median(m["BenchmarkServeFactorized"]); got != 500 {
		t.Fatalf("serve median = %v", got)
	}
	if _, ok := m["BenchmarkNBFitRowAtATime-8"]; ok {
		t.Fatal("GOMAXPROCS suffix must be stripped")
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := writeTemp(t, "base.txt", baselineText)
	cur := writeTemp(t, "cur.txt", `
BenchmarkNBFitRowAtATime-4    	      10	  1150000 ns/op
BenchmarkNBFitColumnar-4      	      10	   310000 ns/op
BenchmarkServeFactorized-4    	     100	      510 ns/op
BenchmarkLogRegFitRowAtATime-4	      10	  2000000 ns/op
BenchmarkLogRegFitColumnar-4  	      10	  1000000 ns/op
BenchmarkSVMFitRowAtATime-4   	      10	  1000000 ns/op
BenchmarkSVMFitColumnar-4     	      10	  1000000 ns/op
BenchmarkANNFitRowAtATime-4   	      10	  1000000 ns/op
BenchmarkANNFitColumnar-4     	      10	  1000000 ns/op
BenchmarkSVMKernelCacheScalar-4	      10	  2000000 ns/op
BenchmarkSVMKernelCacheGemm-4 	      10	   800000 ns/op
`+segPairLines)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &sb); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "pair LogRegFit: fast side 2.00x") {
		t.Fatalf("missing pair report:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "pair SVMKernelCache/Scalar/Gemm: fast side 2.50x") {
		t.Fatalf("missing custom-suffix pair report:\n%s", sb.String())
	}
}

func TestPairGroupsEachRequireAWinner(t *testing.T) {
	// LogReg clears 1.5x but the ANN/SVM compute-kernel group does not —
	// the gate must fail: a logreg-only speedup can no longer carry it.
	cur := writeTemp(t, "cur.txt", `
BenchmarkLogRegFitRowAtATime	      10	  2000000 ns/op
BenchmarkLogRegFitColumnar  	      10	  1000000 ns/op
BenchmarkSVMFitRowAtATime   	      10	  1000000 ns/op
BenchmarkSVMFitColumnar     	      10	  1000000 ns/op
BenchmarkANNFitRowAtATime   	      10	  1000000 ns/op
BenchmarkANNFitColumnar     	      10	  1000000 ns/op
BenchmarkSVMKernelCacheScalar	      10	  1000000 ns/op
BenchmarkSVMKernelCacheGemm 	      10	   900000 ns/op
`+segPairLines)
	var sb strings.Builder
	err := run([]string{"-current", cur}, &sb)
	if err == nil || !strings.Contains(sb.String(), "FAIL pairs") {
		t.Fatalf("compute-kernel group at 1.11x must fail (err %v):\n%s", err, sb.String())
	}
	// With the SVM Gram build at 2.5x the same run passes: the second group
	// has its ANN/SVM winner.
	cur2 := writeTemp(t, "cur2.txt", `
BenchmarkLogRegFitRowAtATime	      10	  2000000 ns/op
BenchmarkLogRegFitColumnar  	      10	  1000000 ns/op
BenchmarkSVMFitRowAtATime   	      10	  1000000 ns/op
BenchmarkSVMFitColumnar     	      10	  1000000 ns/op
BenchmarkANNFitRowAtATime   	      10	  1000000 ns/op
BenchmarkANNFitColumnar     	      10	  1000000 ns/op
BenchmarkSVMKernelCacheScalar	      10	  2500000 ns/op
BenchmarkSVMKernelCacheGemm 	      10	  1000000 ns/op
`+segPairLines)
	sb.Reset()
	if err := run([]string{"-current", cur2}, &sb); err != nil {
		t.Fatalf("gate must pass with an SVM kernel win: %v\n%s", err, sb.String())
	}
}

func TestPairNamesSyntax(t *testing.T) {
	if _, _, err := pairNames("A/B"); err == nil {
		t.Fatal("two-part pair spec must be rejected")
	}
	slow, fast, err := pairNames("ServeBatch/Scalar/Gemm")
	if err != nil || slow != "BenchmarkServeBatchScalar" || fast != "BenchmarkServeBatchGemm" {
		t.Fatalf("custom suffixes resolved to %q/%q (err %v)", slow, fast, err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeTemp(t, "base.txt", baselineText)
	cur := writeTemp(t, "cur.txt", `
BenchmarkNBFitRowAtATime    	      10	  2000000 ns/op
BenchmarkNBFitColumnar      	      10	   310000 ns/op
BenchmarkServeFactorized    	     100	      500 ns/op
`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur, "-pairs", ""}, &sb)
	if err == nil {
		t.Fatalf("gate must fail on an 82%% regression:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL BenchmarkNBFitRowAtATime") {
		t.Fatalf("missing failure line:\n%s", sb.String())
	}
}

func TestGateWarnsOnCurrentOnlyBenchmark(t *testing.T) {
	base := writeTemp(t, "base.txt", baselineText)
	cur := writeTemp(t, "cur.txt", `
BenchmarkNBFitRowAtATime    	      10	  1000000 ns/op
BenchmarkNBFitColumnar      	      10	   300000 ns/op
BenchmarkServeFactorized    	     100	      500 ns/op
BenchmarkTreeSplitColumnar  	      10	   100000 ns/op
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur, "-pairs", ""}, &sb); err != nil {
		t.Fatalf("current-only benchmark must warn, not fail: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "warn BenchmarkTreeSplitColumnar") {
		t.Fatalf("missing ungated warning:\n%s", sb.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := writeTemp(t, "base.txt", baselineText)
	cur := writeTemp(t, "cur.txt", `
BenchmarkNBFitRowAtATime    	      10	  1000000 ns/op
BenchmarkServeFactorized    	     100	      500 ns/op
`)
	var sb strings.Builder
	err := run([]string{"-baseline", base, "-current", cur, "-pairs", ""}, &sb)
	if err == nil || !strings.Contains(sb.String(), "missing from current run") {
		t.Fatalf("gate must fail on missing benchmark (err %v):\n%s", err, sb.String())
	}
}

func TestGateFailsWithoutPairSpeedup(t *testing.T) {
	cur := writeTemp(t, "cur.txt", `
BenchmarkLogRegFitRowAtATime	      10	  1000000 ns/op
BenchmarkLogRegFitColumnar  	      10	   900000 ns/op
BenchmarkSVMFitRowAtATime   	      10	  1000000 ns/op
BenchmarkSVMFitColumnar     	      10	  1000000 ns/op
BenchmarkANNFitRowAtATime   	      10	  1000000 ns/op
BenchmarkANNFitColumnar     	      10	  1100000 ns/op
BenchmarkSVMKernelCacheScalar	      10	  1000000 ns/op
BenchmarkSVMKernelCacheGemm 	      10	  1000000 ns/op
`+segPairLines)
	var sb strings.Builder
	err := run([]string{"-current", cur}, &sb)
	if err == nil || !strings.Contains(sb.String(), "FAIL pairs") {
		t.Fatalf("pair gate must fail at 1.11x best speedup (err %v):\n%s", err, sb.String())
	}
}

func TestPairGateErrorsOnMissingSibling(t *testing.T) {
	cur := writeTemp(t, "cur.txt", `
BenchmarkLogRegFitRowAtATime	      10	  1000000 ns/op
`)
	var sb strings.Builder
	if err := run([]string{"-current", cur, "-pairs", "LogRegFit"}, &sb); err == nil {
		t.Fatal("missing columnar sibling must error")
	}
}

func TestGroupBarSuffix(t *testing.T) {
	spec, bar, err := groupBar("A,B@0.95", 1.5)
	if err != nil || spec != "A,B" || bar != 0.95 {
		t.Fatalf("groupBar(@0.95) = %q, %v, %v", spec, bar, err)
	}
	spec, bar, err = groupBar("A,B", 1.5)
	if err != nil || spec != "A,B" || bar != 1.5 {
		t.Fatalf("groupBar(no suffix) = %q, %v, %v", spec, bar, err)
	}
	for _, bad := range []string{"A@zero", "A@0", "A@-1"} {
		if _, _, err := groupBar(bad, 1.5); err == nil {
			t.Fatalf("groupBar(%q) must reject the bar", bad)
		}
	}
}

func TestGroupBarGatesThePairCheck(t *testing.T) {
	// Parity at 1.0x clears an @0.95 bar but not an @1.2 one.
	cur := writeTemp(t, "cur.txt", `
BenchmarkSegParScanSlab	      10	  1000000 ns/op
BenchmarkSegParScanSeg 	      10	  1000000 ns/op
`)
	var sb strings.Builder
	if err := run([]string{"-current", cur, "-pairs", "SegParScan/Slab/Seg@0.95"}, &sb); err != nil {
		t.Fatalf("parity pair must clear @0.95: %v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := run([]string{"-current", cur, "-pairs", "SegParScan/Slab/Seg@1.2"}, &sb); err == nil {
		t.Fatalf("parity pair must miss @1.2:\n%s", sb.String())
	}
}

func TestZeroAllocGate(t *testing.T) {
	// A matched benchmark allocating per op fails; one with no allocs/op
	// sample (run without -benchmem) fails too; a clean 0 passes.
	leaky := writeTemp(t, "leaky.txt", `
BenchmarkServeConcurrentFactorized	     100	       20 ns/op	      16 B/op	       1 allocs/op
`)
	var sb strings.Builder
	err := run([]string{"-current", leaky, "-pairs", ""}, &sb)
	if err == nil || !strings.Contains(sb.String(), "1 allocs/op, want 0") {
		t.Fatalf("allocating benchmark must fail the zero-alloc gate (err %v):\n%s", err, sb.String())
	}
	unmeasured := writeTemp(t, "unmeasured.txt", `
BenchmarkServeConcurrentFactorized	     100	       20 ns/op
`)
	sb.Reset()
	err = run([]string{"-current", unmeasured, "-pairs", ""}, &sb)
	if err == nil || !strings.Contains(sb.String(), "no allocs/op sample") {
		t.Fatalf("missing -benchmem sample must fail the zero-alloc gate (err %v):\n%s", err, sb.String())
	}
	clean := writeTemp(t, "clean.txt", `
BenchmarkServeConcurrentFactorized	     100	       20 ns/op	       0 B/op	       0 allocs/op
`)
	sb.Reset()
	if err := run([]string{"-current", clean, "-pairs", ""}, &sb); err != nil {
		t.Fatalf("0 allocs/op must pass: %v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := run([]string{"-current", leaky, "-pairs", "", "-zero-alloc", ""}, &sb); err != nil {
		t.Fatalf("empty -zero-alloc must disable the check: %v\n%s", err, sb.String())
	}
}

func TestCurrentRequired(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("-current must be required")
	}
}

// TestJSONSummary pins the -json artifact: gated benchmarks only, median
// ns/op, allocs/op where the run sampled them, and repetition counts.
func TestJSONSummary(t *testing.T) {
	cur := writeTemp(t, "cur.txt", baselineText+segPairLines)
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	// Pairs and zero-alloc checks are irrelevant here; the summary must be
	// written regardless of gate outcomes.
	err := run([]string{"-current", cur, "-json", jsonPath, "-pairs", "", "-zero-alloc", ""}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Benchmarks map[string]struct {
			NsPerOp     float64  `json:"ns_per_op"`
			AllocsPerOp *float64 `json:"allocs_per_op"`
			Samples     int      `json:"samples"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	nb, ok := got.Benchmarks["BenchmarkNBFitRowAtATime"]
	if !ok {
		t.Fatalf("summary missing gated benchmark: %s", raw)
	}
	if nb.NsPerOp != 1100000 || nb.Samples != 3 || nb.AllocsPerOp == nil || *nb.AllocsPerOp != 1 {
		t.Fatalf("NBFitRowAtATime summary %+v", nb)
	}
	co := got.Benchmarks["BenchmarkServeConcurrentCoalesced"]
	if co.AllocsPerOp == nil || *co.AllocsPerOp != 0 {
		t.Fatalf("Coalesced summary %+v", co)
	}
	seg, ok := got.Benchmarks["BenchmarkSegParScanSlab"]
	if !ok || seg.AllocsPerOp != nil {
		t.Fatalf("SegParScanSlab summary %+v (allocs must be absent without -benchmem)", seg)
	}
	if _, ok := got.Benchmarks["BenchmarkBogus"]; ok {
		t.Fatal("ungated benchmark leaked into summary")
	}
}
