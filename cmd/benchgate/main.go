// Command benchgate is the CI benchmark-regression gate. It parses two `go
// test -bench` output files — a committed baseline (refresh with `make
// bench-baseline`) and the current run — and fails when
//
//  1. any gated benchmark's median ns/op regressed more than -max-regress
//     (default 20%) against the baseline, or a gated baseline benchmark is
//     missing from the current run; or
//  2. any -pairs group lacks a pair whose fast side is at least -min-speedup
//     (default 1.5x) faster than its slow side *within the current run* —
//     the machine-independent check that the batched paths actually pay for
//     themselves. Groups are ';'-separated lists of pairs; a pair is either
//     a bare name (Benchmark<name>RowAtATime vs Benchmark<name>Columnar, the
//     storage-engine convention) or name/slowSuffix/fastSuffix for custom
//     A/B suffixes (e.g. SVMKernelCache/Scalar/Gemm). A group may override
//     the required speedup with an @<ratio> suffix (e.g. `A,B@0.95` — used
//     by the segmented-engine parity group, whose bar is "no tax vs the
//     slab", not a speedup). Every group must produce at least one winner,
//     so a logreg-only speedup can no longer carry the gate — the
//     compute-kernel group requires the win on an ANN or SVM pair.
//
// Medians are taken across repetitions (`-count=N`), mirroring benchstat's
// robustness to scheduler noise; run benchstat alongside for the
// human-readable delta table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultGate covers the storage-engine, compute-kernel, serving, and
// segmented-engine pairs that guard the repository's headline wins: join
// pipeline, NB fit, tree split search, the iterative-learner pairs, the
// factorized serving path, the GEMM-vs-scalar kernel pairs (SVM Gram build,
// batch serving), the zone-map skip pairs, and the segmented-vs-slab parity
// pairs.
const defaultGate = `^Benchmark(Join(Materialized|View)|(NBFit|TreeSplit|LogRegFit|SVMFit|ANNFit)(RowAtATime|Columnar)|SVMFitErrorCache|ANNFitFusedAdam|Serve(Factorized|Joined)|SVMKernelCache(Scalar|Gemm)|ServeBatch(Scalar|Gemm)|SelectEqSeg(FullScan|ZoneSkip)|TreeSplitZone(FullSearch|Skip)|SegParScan(Slab|Seg)|(NBFit|TreeSplit)Segmented|ServeConcurrent(Scalar|Coalesced|Factorized|Hardened))$`

// defaultPairs is the speedup requirement: the first group keeps the PR 4
// storage-engine bar (some iterative learner ≥ min-speedup columnar vs row),
// the second is the compute-kernel bar — the win must land on an ANN or SVM
// pair (full fit or the Gram-build kernel), not just logreg. The third is
// the zone-map bar: skipping provably-irrelevant segments or features must
// beat the full scan. The fourth is the segmented-engine parity bar at
// @0.95: segment routing must not tax the hot training loops vs the
// monolithic slab (within noise on one core; the SegParScan pair scales
// with cores). The last two are the approximate-training-tier bars — the
// error-cache SMO and fused-Adam kernels must each beat their bit-exact
// Columnar reference; each is its own group so neither win can carry the
// other (both paths are additionally held to held-out equivalence by the
// accuracy gate, `hamlet -verify accuracy`).
const defaultPairs = `LogRegFit,SVMFit,ANNFit;SVMFit,ANNFit,SVMKernelCache/Scalar/Gemm;SelectEqSeg/FullScan/ZoneSkip,TreeSplitZone/FullSearch/Skip;SegParScan/Slab/Seg,NBFit/Columnar/Segmented,TreeSplit/Columnar/Segmented@0.95;ServeConcurrent/Scalar/Coalesced@2.0;SVMFit/Columnar/ErrorCache;ANNFit/Columnar/FusedAdam`

// defaultZeroAlloc names the benchmarks whose steady state must allocate
// nothing: the factorized-linear serving path end to end, the coalesced
// path's per-request amortized count (its per-batch setup divides below one
// allocation per request), and the hardened in-process entry (admission
// gate + panic recovery on top of the factorized path). A matched benchmark
// lacking an allocs/op sample fails the gate — the bench run must use
// -benchmem.
const defaultZeroAlloc = `^BenchmarkServeConcurrent(Coalesced|Factorized|Hardened)$`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "baseline go-bench output file (empty skips the regression check)")
	currentPath := fs.String("current", "", "current go-bench output file (required)")
	gate := fs.String("gate", defaultGate, "regexp of benchmark names the regression check gates")
	maxRegress := fs.Float64("max-regress", 0.20, "maximum tolerated ns/op regression vs baseline (0.20 = +20%)")
	pairs := fs.String("pairs", defaultPairs, "';'-separated groups of comma-separated pairs for the speedup check; a pair is <name> (RowAtATime vs Columnar) or <name>/<slow>/<fast> (empty skips)")
	minSpeedup := fs.Float64("min-speedup", 1.5, "required slow/fast speedup on at least one pair per group")
	zeroAlloc := fs.String("zero-alloc", defaultZeroAlloc, "regexp of current-run benchmarks that must report 0 allocs/op (empty disables)")
	jsonPath := fs.String("json", "", "write the gated medians (ns/op, allocs/op, sample counts) as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		return fmt.Errorf("bad -gate: %w", err)
	}
	current, allocs, err := parseBenchFile(*currentPath)
	if err != nil {
		return err
	}

	if *jsonPath != "" {
		if err := writeJSONSummary(*jsonPath, current, allocs, gateRE); err != nil {
			return err
		}
	}

	failures := 0
	if *baselinePath != "" {
		baseline, _, err := parseBenchFile(*baselinePath)
		if err != nil {
			return err
		}
		failures += checkRegressions(out, baseline, current, gateRE, *maxRegress)
	}
	if *zeroAlloc != "" {
		zaRE, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			return fmt.Errorf("bad -zero-alloc: %w", err)
		}
		failures += checkZeroAlloc(out, current, allocs, zaRE)
	}
	if *pairs != "" {
		for _, group := range strings.Split(*pairs, ";") {
			spec, bar, err := groupBar(group, *minSpeedup)
			if err != nil {
				return err
			}
			ok, err := checkPairSpeedup(out, current, strings.Split(spec, ","), bar)
			if err != nil {
				return err
			}
			if !ok {
				failures++
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d gate(s) failed", failures)
	}
	fmt.Fprintln(out, "benchgate: all gates passed")
	return nil
}

// benchSummary is one gated benchmark's digest in the -json output.
type benchSummary struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"` // absent without -benchmem
	Samples     int      `json:"samples"`
}

// writeJSONSummary digests the current run's gated benchmarks — median
// ns/op, median allocs/op where sampled, and the repetition count — into a
// machine-readable file (the BENCH_<n>.json artifacts CI archives). Written
// before the gates are judged so a failing run still leaves its numbers
// behind for diagnosis.
func writeJSONSummary(path string, current, allocs map[string][]float64, gate *regexp.Regexp) error {
	summary := map[string]benchSummary{}
	for name, ns := range current {
		if !gate.MatchString(name) {
			continue
		}
		s := benchSummary{NsPerOp: median(ns), Samples: len(ns)}
		if a, ok := allocs[name]; ok {
			m := median(a)
			s.AllocsPerOp = &m
		}
		summary[name] = s
	}
	raw, err := json.MarshalIndent(map[string]any{"benchmarks": summary}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// checkRegressions compares median ns/op of every gated baseline benchmark
// against the current run and returns the number of violations. Gated
// benchmarks that appear only in the current run are reported as warnings:
// they have no bar to clear, which usually means the committed baseline
// needs a refresh after adding a pair.
func checkRegressions(out io.Writer, baseline, current map[string][]float64, gate *regexp.Regexp, maxRegress float64) int {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if gate.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var ungated []string
	for name := range current {
		if gate.MatchString(name) {
			if _, ok := baseline[name]; !ok {
				ungated = append(ungated, name)
			}
		}
	}
	sort.Strings(ungated)
	for _, name := range ungated {
		fmt.Fprintf(out, "warn %s: gated name missing from baseline — ungated until `make bench-baseline` is rerun\n", name)
	}
	bad := 0
	for _, name := range names {
		base := median(baseline[name])
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(out, "FAIL %s: present in baseline but missing from current run\n", name)
			bad++
			continue
		}
		c := median(cur)
		ratio := c / base
		status := "ok  "
		if ratio > 1+maxRegress {
			status = "FAIL"
			bad++
		}
		fmt.Fprintf(out, "%s %s: %.0f -> %.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
			status, name, base, c, (ratio-1)*100, maxRegress*100)
	}
	return bad
}

// checkZeroAlloc requires every current benchmark matching the -zero-alloc
// regexp to report a 0 allocs/op median. A matched benchmark with no
// allocs/op sample fails too: it means the run skipped -benchmem and the
// allocation contract went unmeasured. Presence of the benchmarks themselves
// is the regression gate's job, so a run matching nothing passes here.
func checkZeroAlloc(out io.Writer, current, allocs map[string][]float64, re *regexp.Regexp) int {
	names := make([]string, 0, len(current))
	for name := range current {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	bad := 0
	for _, name := range names {
		a, ok := allocs[name]
		if !ok {
			fmt.Fprintf(out, "FAIL %s: no allocs/op sample — run the gated benchmarks with -benchmem\n", name)
			bad++
			continue
		}
		if m := median(a); m != 0 {
			fmt.Fprintf(out, "FAIL %s: %g allocs/op, want 0\n", name, m)
			bad++
			continue
		}
		fmt.Fprintf(out, "ok   %s: 0 allocs/op\n", name)
	}
	return bad
}

// groupBar splits one -pairs group into its pair list and required speedup:
// an `@<ratio>` suffix overrides the global -min-speedup for that group.
func groupBar(group string, def float64) (spec string, bar float64, err error) {
	spec, barStr, found := strings.Cut(group, "@")
	if !found {
		return spec, def, nil
	}
	bar, err = strconv.ParseFloat(barStr, 64)
	if err != nil || bar <= 0 {
		return "", 0, fmt.Errorf("bad group bar %q: want @<positive ratio>", group)
	}
	return spec, bar, nil
}

// pairNames resolves one -pairs entry to its slow and fast benchmark names:
// a bare name uses the RowAtATime/Columnar storage-engine convention, and
// name/slowSuffix/fastSuffix names the suffixes explicitly.
func pairNames(p string) (slow, fast string, err error) {
	switch parts := strings.Split(p, "/"); len(parts) {
	case 1:
		return "Benchmark" + p + "RowAtATime", "Benchmark" + p + "Columnar", nil
	case 3:
		return "Benchmark" + parts[0] + parts[1], "Benchmark" + parts[0] + parts[2], nil
	default:
		return "", "", fmt.Errorf("bad pair %q: want <name> or <name>/<slow>/<fast>", p)
	}
}

// checkPairSpeedup requires at least one pair of the group whose fast side
// is minSpeedup faster than its slow sibling within the same run.
func checkPairSpeedup(out io.Writer, current map[string][]float64, pairs []string, minSpeedup float64) (bool, error) {
	best := 0.0
	for _, p := range pairs {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		slowName, fastName, err := pairNames(p)
		if err != nil {
			return false, err
		}
		slow, okSlow := current[slowName]
		fast, okFast := current[fastName]
		if !okSlow || !okFast {
			return false, fmt.Errorf("pair %s: %s or %s missing from current run", p, slowName, fastName)
		}
		speedup := median(slow) / median(fast)
		if speedup > best {
			best = speedup
		}
		fmt.Fprintf(out, "pair %s: fast side %.2fx vs slow\n", p, speedup)
	}
	if best < minSpeedup {
		fmt.Fprintf(out, "FAIL pairs: best columnar speedup %.2fx < required %.2fx in group\n", best, minSpeedup)
		return false, nil
	}
	return true, nil
}

func parseBenchFile(path string) (map[string][]float64, map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	m, allocs, err := parseBench(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return m, allocs, nil
}

// parseBench reads `go test -bench` output: one ns/op sample per result
// line, keyed by the benchmark name with its -GOMAXPROCS suffix stripped so
// baselines recorded at different core counts still compare. Lines from a
// -benchmem run also contribute an allocs/op sample to the second map.
func parseBench(r io.Reader) (map[string][]float64, map[string][]float64, error) {
	out := map[string][]float64{}
	allocs := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in line %q: %w", sc.Text(), err)
		}
		out[name] = append(out[name], v)
		for i := 4; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			a, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad allocs/op in line %q: %w", sc.Text(), err)
			}
			allocs[name] = append(allocs[name], a)
			break
		}
	}
	return out, allocs, sc.Err()
}

// median of a non-empty sample set (mean of the middle two when even).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
