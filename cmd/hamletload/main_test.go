package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

// testDaemon boots an in-process serving stack identical to hamletd's:
// trained NB artifact, factorized engine, registry server.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.BuildArtifact(env, core.NaiveBayesBFSSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(e).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadClosedLoop drives a short closed-loop burst and checks the report.
func TestLoadClosedLoop(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-warmup", "50ms",
		"-conns", "8", "-min-rps", "1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"req/s", "latency: p50", "mallocs/req", "coalescer:"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

// TestLoadOpenLoop exercises the paced arrival path.
func TestLoadOpenLoop(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-warmup", "0s",
		"-conns", "8", "-rate", "200",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "req/s") {
		t.Errorf("report missing throughput:\n%s", out.String())
	}
}

// TestLoadFailures covers the gating exits: unreachable floor and unknown
// model slot.
func TestLoadFailures(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "200ms", "-warmup", "0s",
		"-conns", "4", "-min-rps", "1e12",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("want throughput-floor error, got %v", err)
	}
	if err := run([]string{"-addr", ts.URL, "-model", "nope", "-duration", "100ms"}, &out); err == nil {
		t.Fatal("unknown model slot accepted")
	}
}
