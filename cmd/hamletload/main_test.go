package main

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

// testDaemon boots an in-process serving stack identical to hamletd's:
// trained NB artifact, factorized engine, registry server.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	spec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(ss, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.BuildArtifact(env, core.NaiveBayesBFSSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(e).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadClosedLoop drives a short closed-loop burst and checks the report.
func TestLoadClosedLoop(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-warmup", "50ms",
		"-conns", "8", "-min-rps", "1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"req/s", "latency: p50", "mallocs/req", "coalescer:"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

// TestLoadOpenLoop exercises the paced arrival path.
func TestLoadOpenLoop(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-warmup", "0s",
		"-conns", "8", "-rate", "200",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "req/s") {
		t.Errorf("report missing throughput:\n%s", out.String())
	}
}

// TestLoadFailures covers the gating exits: unreachable floor and unknown
// model slot.
func TestLoadFailures(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "200ms", "-warmup", "0s",
		"-conns", "4", "-min-rps", "1e12",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("want throughput-floor error, got %v", err)
	}
	if err := run([]string{"-addr", ts.URL, "-model", "nope", "-duration", "100ms"}, &out); err == nil {
		t.Fatal("unknown model slot accepted")
	}
}

// TestLoadScrape drives a burst with -scrape and checks the server-side
// report: the recomputed latency quantiles, the delta table, and agreement
// between the scraped request-counter delta and the client's own count.
func TestLoadScrape(t *testing.T) {
	ts := testDaemon(t)
	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-warmup", "50ms",
		"-conns", "8", "-scrape",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"server latency (from /metrics bucket deltas): p50",
		"scrape deltas (",
		`hamlet_http_requests_total{endpoint="predict"}`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape report missing %q:\n%s", want, got)
		}
	}
	// The scraped request delta must equal the requests the client sent in
	// the measured window (the "N requests in" line counts successes; warmup
	// traffic happened before the first scrape).
	var clientN int
	if _, err := fmt.Sscanf(got[strings.Index(got, "\n")+1:], "%d requests in", &clientN); err != nil {
		t.Fatalf("parsing client request count: %v\n%s", err, got)
	}
	re := regexp.MustCompile(`hamlet_http_requests_total\{endpoint="predict"\}\s+\+(\d+)`)
	m := re.FindStringSubmatch(got)
	if m == nil {
		t.Fatalf("no request-counter delta in report:\n%s", got)
	}
	if serverN, _ := strconv.Atoi(m[1]); serverN != clientN {
		t.Errorf("server counted %d requests, client measured %d\n%s", serverN, clientN, got)
	}
}
