// Command hamletload is the load harness for hamletd: it discovers a model's
// input layout from GET /models, synthesizes valid requests, drives
// concurrent /predict traffic against a live daemon, and reports throughput,
// tail latency, and server-side allocation counts.
//
// Usage:
//
//	hamletd    -model m.bin -addr 127.0.0.1:8080 &
//	hamletload -addr 127.0.0.1:8080 -conns 64 -duration 5s
//
// Two drive modes: closed-loop (-rate 0, the default) keeps -conns workers
// each with one outstanding request — the classic saturation probe; open
// loop (-rate N) dispatches N requests per second from a pacer regardless of
// completions, the arrival process that actually exposes queueing delay
// (coordinated omission is what closed loops hide). In both modes the report
// gives req/s, p50/p99/p999/max latency, the server's mallocs-per-request
// delta (from /stats), and the coalescer's batch counters.
//
// -min-rps sets a throughput floor: the run exits non-zero below it, which
// is what lets CI gate serving regressions with a one-line smoke job.
//
// -retries N makes each worker retry a failed request up to N times —
// transport errors, 429 (the daemon's admission gate shedding load), and 5xx
// all qualify — with capped exponential backoff and full jitter, so a shed
// burst spreads out instead of stampeding back in sync. The report counts
// retries, shed responses, and splits 5xx into structured (the recovery
// middleware's JSON error body) and unstructured; a chaos run against a
// panicking daemon must report 0 unstructured 5xx, which is exactly what the
// CI chaos-smoke job greps for.
//
// -scrape additionally snapshots GET /metrics before and after the measured
// window and reports the server's own view of the run: every counter that
// moved, and p50/p99/p999 recomputed from the /predict latency histogram's
// bucket deltas — printed next to the client-side percentiles so queueing
// delay outside the server (client stack, kernel, NIC) is visible as the gap
// between the two.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hamletload:", err)
		os.Exit(1)
	}
}

type config struct {
	base     string
	model    string
	mode     string
	duration time.Duration
	warmup   time.Duration
	conns    int
	rate     int
	seed     int64
	minRPS   float64
	bodies   int
	scrape   bool
	retries  int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("hamletload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "hamletd address (host:port or http URL)")
	model := fs.String("model", "", "model slot to target (default: the daemon's default slot)")
	mode := fs.String("mode", "", "forced scoring path: factorized or joined (default: the engine's choice)")
	duration := fs.Duration("duration", 5*time.Second, "measured load duration")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "unmeasured warmup before the clock starts")
	conns := fs.Int("conns", 64, "concurrent workers (closed loop) / max in-flight (open loop)")
	rate := fs.Int("rate", 0, "open-loop request rate in req/s (0 = closed loop)")
	seed := fs.Int64("seed", 1, "request synthesis seed")
	minRPS := fs.Float64("min-rps", 0, "fail (exit 1) below this measured req/s")
	bodies := fs.Int("bodies", 256, "distinct pre-encoded request bodies to cycle through")
	scrape := fs.Bool("scrape", false, "snapshot /metrics around the run and report server-side counter deltas and latency quantiles")
	retries := fs.Int("retries", 0, "max retries per request on 429/5xx/transport errors (capped exponential backoff with jitter)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if *conns <= 0 {
		return config{}, fmt.Errorf("-conns must be positive")
	}
	return config{
		base: base, model: *model, mode: *mode,
		duration: *duration, warmup: *warmup,
		conns: *conns, rate: *rate, seed: *seed,
		minRPS: *minRPS, bodies: *bodies, scrape: *scrape,
		retries: *retries,
	}, nil
}

// modelsResponse mirrors hamletd's GET /models shape.
type modelsResponse struct {
	Models []struct {
		Name       string `json:"name"`
		Version    int    `json:"version"`
		Kind       string `json:"kind"`
		Factorized bool   `json:"factorized"`
		Batched    bool   `json:"batched"`
		Inputs     []struct {
			Name        string `json:"name"`
			Cardinality int    `json:"cardinality"`
		} `json:"inputs"`
	} `json:"models"`
}

// statsSnapshot is the slice of GET /stats the report needs.
type statsSnapshot struct {
	Mallocs   uint64 `json:"mallocs"`
	Examples  int64  `json:"examples"`
	Errors    int64  `json:"errors"`
	Coalescer map[string]struct {
		Batches   uint64 `json:"batches"`
		Coalesced uint64 `json:"coalesced"`
		Direct    uint64 `json:"direct"`
	} `json:"coalescer"`
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// synthesize pre-encodes cfg.bodies random valid /predict bodies for the
// chosen model, using the advertised cardinalities so every request passes
// domain validation and the run measures serving, not error handling.
func synthesize(cfg config, models modelsResponse) ([][]byte, string, error) {
	idx := 0
	if cfg.model != "" {
		idx = -1
		for i, m := range models.Models {
			if m.Name == cfg.model {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, "", fmt.Errorf("daemon has no model %q", cfg.model)
		}
	}
	if len(models.Models) == 0 {
		return nil, "", fmt.Errorf("daemon serves no models")
	}
	m := models.Models[idx]
	rng := rand.New(rand.NewSource(cfg.seed))
	bodies := make([][]byte, cfg.bodies)
	var buf bytes.Buffer
	for i := range bodies {
		buf.Reset()
		buf.WriteString(`{"input":{`)
		for j, in := range m.Inputs {
			if j > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%q:%d", in.Name, rng.Intn(in.Cardinality))
		}
		buf.WriteString("}}")
		bodies[i] = append([]byte(nil), buf.Bytes()...)
	}
	return bodies, fmt.Sprintf("%s v%d (%s, factorized=%v, batched=%v)",
		m.Name, m.Version, m.Kind, m.Factorized, m.Batched), nil
}

// scrapeMetrics fetches /metrics and returns every sample keyed by its fully
// qualified series name (name plus rendered labels).
func scrapeMetrics(c *http.Client, base string) (map[string]float64, error) {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			samples[line[:sp]] = v
		}
	}
	return samples, sc.Err()
}

// scrapeQuantiles recomputes latency quantiles from the delta of two scrapes
// of one histogram family: the cumulative bucket counts that moved during
// the run ARE the run's histogram, so the server's own p50/p99/p999 fall out
// of obs.QuantileFromCumulative with no extra instrumentation. prefix is the
// family's `_bucket{...` series prefix up to (excluding) the le label.
func scrapeQuantiles(before, after map[string]float64, prefix string) (p50, p99, p999 time.Duration, ok bool) {
	type bkt struct {
		le    float64
		count uint64
	}
	var bkts []bkt
	for series, av := range after {
		rest, found := strings.CutPrefix(series, prefix)
		if !found {
			continue
		}
		rest, found = strings.CutPrefix(rest, `le="`)
		if !found {
			continue
		}
		le, err := strconv.ParseFloat(strings.TrimSuffix(rest, `"}`), 64)
		if err != nil {
			continue
		}
		// A bucket absent from the earlier scrape was empty then (empty
		// buckets are elided from the exposition): its before-count is 0.
		if d := av - before[series]; d > 0 {
			bkts = append(bkts, bkt{le, uint64(d)})
		}
	}
	if len(bkts) == 0 {
		return 0, 0, 0, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	les := make([]float64, len(bkts))
	cums := make([]uint64, len(bkts))
	for i, b := range bkts {
		les[i] = b.le
		cums[i] = b.count // deltas of cumulative counts are cumulative
	}
	q := func(p float64) time.Duration {
		return time.Duration(obs.QuantileFromCumulative(les, cums, p))
	}
	return q(0.50), q(0.99), q(0.999), true
}

// reportScrape prints the server-side view of the run: recomputed /predict
// latency quantiles and every scalar counter that moved between the scrapes.
func reportScrape(out io.Writer, before, after map[string]float64) {
	if p50, p99, p999, ok := scrapeQuantiles(before, after,
		`hamlet_http_request_ns_bucket{endpoint="predict",`); ok {
		fmt.Fprintf(out, "server latency (from /metrics bucket deltas): p50 %s  p99 %s  p999 %s\n",
			p50, p99, p999)
	}
	var moved []string
	for series, av := range after {
		if strings.Contains(series, "_bucket{") || strings.Contains(series, "_bucket ") {
			continue // quantiles above already summarize the buckets
		}
		if d := av - before[series]; d != 0 {
			// Counters are integral; %g would flip to exponent notation past
			// 1e6 and defeat downstream delta parsing.
			moved = append(moved, fmt.Sprintf("  %-64s %+d", series, int64(d)))
		}
	}
	sort.Strings(moved)
	fmt.Fprintf(out, "scrape deltas (%d series moved):\n", len(moved))
	for _, line := range moved {
		fmt.Fprintln(out, line)
	}
}

// recorder accumulates latencies across workers.
type recorder struct {
	mu   sync.Mutex
	lat  []time.Duration
	errs int
}

func (r *recorder) add(lats []time.Duration, errs int) {
	r.mu.Lock()
	r.lat = append(r.lat, lats...)
	r.errs += errs
	r.mu.Unlock()
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.conns * 2,
			MaxIdleConnsPerHost: cfg.conns * 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	var models modelsResponse
	if err := getJSON(client, cfg.base+"/models", &models); err != nil {
		return fmt.Errorf("discovering input layout: %w", err)
	}
	bodies, target, err := synthesize(cfg, models)
	if err != nil {
		return err
	}
	url := cfg.base + "/predict"
	q := []string{}
	if cfg.model != "" {
		q = append(q, "model="+cfg.model)
	}
	if cfg.mode != "" {
		q = append(q, "mode="+cfg.mode)
	}
	if len(q) > 0 {
		url += "?" + strings.Join(q, "&")
	}

	// Robustness accounting across all attempts (warmup included — an
	// unstructured 5xx is a defect whenever it happens):
	//   shed429      responses rejected by the daemon's admission gate
	//   structured5  5xx with the recovery middleware's JSON error body
	//   unstruct5    5xx without one — a panic that escaped the middleware
	//   retried      attempts re-issued after a retryable failure
	var shed429, structured5, unstruct5, retried atomic.Int64

	// attempt fires one request. code 0 means a transport-level error.
	attempt := func(body []byte) (lat time.Duration, code int, err error) {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		if resp.StatusCode == http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return time.Since(start), http.StatusOK, nil
		}
		// Error path: read the body to classify it. Structured errors are the
		// server's fail() shape — a JSON object with a non-empty "error" key.
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			shed429.Add(1)
		case resp.StatusCode >= 500:
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(rb, &e) == nil && e.Error != "" {
				structured5.Add(1)
			} else {
				unstruct5.Add(1)
			}
		}
		return 0, resp.StatusCode, fmt.Errorf("status %s", resp.Status)
	}

	// shoot wraps attempt with up to cfg.retries re-issues on retryable
	// failures: transport errors, 429 (shed — the server asked us to back
	// off), and any 5xx. Backoff is capped exponential with full jitter
	// (uniform in [0, min(2ms<<n, 200ms))): a shed burst de-synchronizes
	// instead of returning as the same thundering herd that got it shed.
	shoot := func(body []byte) (time.Duration, error) {
		const (
			backoffBase = 2 * time.Millisecond
			backoffCap  = 200 * time.Millisecond
		)
		for att := 0; ; att++ {
			lat, code, err := attempt(body)
			if err == nil {
				return lat, nil
			}
			retryable := code == 0 || code == http.StatusTooManyRequests || code >= 500
			if !retryable || att >= cfg.retries {
				return 0, err
			}
			retried.Add(1)
			ceil := backoffBase << uint(att)
			if ceil > backoffCap {
				ceil = backoffCap
			}
			time.Sleep(time.Duration(rand.Int63n(int64(ceil))))
		}
	}

	// Warmup: fill connection pools and JIT the serving path off the clock.
	if cfg.warmup > 0 {
		stopAt := time.Now().Add(cfg.warmup)
		var wg sync.WaitGroup
		for w := 0; w < cfg.conns; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(stopAt); i++ {
					shoot(bodies[i%len(bodies)])
				}
			}(w)
		}
		wg.Wait()
	}

	var before statsSnapshot
	if err := getJSON(client, cfg.base+"/stats", &before); err != nil {
		return fmt.Errorf("reading /stats: %w", err)
	}
	var mBefore map[string]float64
	if cfg.scrape {
		if mBefore, err = scrapeMetrics(client, cfg.base); err != nil {
			return fmt.Errorf("scraping /metrics: %w", err)
		}
	}

	rec := &recorder{}
	begin := time.Now()
	deadline := begin.Add(cfg.duration)
	if cfg.rate > 0 {
		// Open loop: a pacer releases request slots on schedule; each fires
		// in its own goroutine, bounded only by -conns in-flight (a full
		// window blocks the pacer, which the report surfaces as reduced
		// throughput rather than silently thinning the arrival process).
		sem := make(chan struct{}, cfg.conns)
		var wg sync.WaitGroup
		interval := time.Second / time.Duration(cfg.rate)
		next := begin
		for i := 0; ; i++ {
			now := time.Now()
			if !now.Before(deadline) {
				break
			}
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				lat, err := shoot(bodies[i%len(bodies)])
				if err != nil {
					rec.add(nil, 1)
					return
				}
				rec.add([]time.Duration{lat}, 0)
			}(i)
		}
		wg.Wait()
	} else {
		// Closed loop: one outstanding request per worker.
		var wg sync.WaitGroup
		for w := 0; w < cfg.conns; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, 4096)
				errs := 0
				for i := w; time.Now().Before(deadline); i += cfg.conns {
					lat, err := shoot(bodies[i%len(bodies)])
					if err != nil {
						errs++
						continue
					}
					lats = append(lats, lat)
				}
				rec.add(lats, errs)
			}(w)
		}
		wg.Wait()
	}
	elapsed := time.Since(begin)

	var after statsSnapshot
	if err := getJSON(client, cfg.base+"/stats", &after); err != nil {
		return fmt.Errorf("reading /stats: %w", err)
	}

	n := len(rec.lat)
	rps := float64(n) / elapsed.Seconds()
	sort.Slice(rec.lat, func(i, j int) bool { return rec.lat[i] < rec.lat[j] })
	fmt.Fprintf(out, "hamletload: target %s via %s\n", target, url)
	fmt.Fprintf(out, "%d requests in %.2fs: %.1f req/s, %d errors\n", n, elapsed.Seconds(), rps, rec.errs)
	if n > 0 {
		fmt.Fprintf(out, "latency: p50 %s  p99 %s  p999 %s  max %s\n",
			percentile(rec.lat, 0.50), percentile(rec.lat, 0.99),
			percentile(rec.lat, 0.999), rec.lat[n-1])
	}
	if served := after.Examples - before.Examples; served > 0 {
		fmt.Fprintf(out, "server: %.1f mallocs/req (%d mallocs over %d served)\n",
			float64(after.Mallocs-before.Mallocs)/float64(served),
			after.Mallocs-before.Mallocs, served)
	}
	var batches, coalesced, direct uint64
	for name, c := range after.Coalescer {
		b := before.Coalescer[name]
		batches += c.Batches - b.Batches
		coalesced += c.Coalesced - b.Coalesced
		direct += c.Direct - b.Direct
	}
	if batches > 0 {
		fmt.Fprintf(out, "coalescer: %d batches, %d coalesced (avg batch %.1f), %d direct\n",
			batches, coalesced, float64(coalesced)/float64(batches), direct)
	} else {
		fmt.Fprintf(out, "coalescer: 0 batches, %d direct\n", direct)
	}
	if errs := after.Errors - before.Errors; errs > 0 {
		fmt.Fprintf(out, "server: %d errored requests during run\n", errs)
	}
	if cfg.retries > 0 || shed429.Load()+structured5.Load()+unstruct5.Load() > 0 {
		fmt.Fprintf(out, "robustness: %d retries, %d shed (429), %d structured 5xx, %d unstructured 5xx\n",
			retried.Load(), shed429.Load(), structured5.Load(), unstruct5.Load())
	}
	if cfg.scrape {
		mAfter, err := scrapeMetrics(client, cfg.base)
		if err != nil {
			return fmt.Errorf("scraping /metrics: %w", err)
		}
		reportScrape(out, mBefore, mAfter)
	}
	if rec.errs > 0 && n == 0 {
		return fmt.Errorf("all %d requests failed", rec.errs)
	}
	if cfg.minRPS > 0 && rps < cfg.minRPS {
		return fmt.Errorf("throughput %.1f req/s below floor %.1f", rps, cfg.minRPS)
	}
	if u := unstruct5.Load(); u > 0 {
		// A 5xx without the structured JSON error body means a panic escaped
		// the recovery middleware — always a server defect, so always fatal.
		return fmt.Errorf("%d unstructured 5xx responses", u)
	}
	return nil
}
