package main

import "testing"

func TestRunRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{},                                     // nothing to do
		{"-table", "9"},                        // unknown table
		{"-effort", "bogus"},                   // unknown effort
		{"-figure", "3"},                       // only figure 1 lives here
		{"-unknown-flag"},                      // flag parse error
		{"-table", "1", "-engine", "diagonal"}, // unknown storage engine
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}
