package main

import (
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestRunRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{},                                     // nothing to do
		{"-table", "9"},                        // unknown table
		{"-effort", "bogus"},                   // unknown effort
		{"-figure", "3"},                       // only figure 1 lives here
		{"-unknown-flag"},                      // flag parse error
		{"-table", "1", "-engine", "diagonal"}, // unknown storage engine
		{"-train"},                             // -train without -model/-dataset
		{"-train", "-model", "x", "-dataset", "Nowhere"},
		{"-train", "-model", "x", "-dataset", "Movies", "-spec", "NotAModel"},
		{"-eval"}, // -eval without -model
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}

// TestTrainEvalRoundTrip drives the CLI halves of the pipeline: -train
// writes an artifact, -eval loads it back (dataset/scale/seed from the
// artifact metadata) and scores it.
func TestTrainEvalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := run([]string{
		"-train", "-dataset", "Walmart", "-spec", "LogisticRegression(L1)",
		"-model", path, "-scale", "4096", "-seed", "3",
	}); err != nil {
		t.Fatal(err)
	}
	m, err := model.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != model.KindLogReg || m.Meta["dataset"] != "Walmart" || m.Meta["scale"] != "4096" {
		t.Fatalf("artifact %s meta %v", m.Kind, m.Meta)
	}
	if err := run([]string{"-eval", "-model", path}); err != nil {
		t.Fatal(err)
	}
}
