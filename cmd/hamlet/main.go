// Command hamlet regenerates the paper's real-data experiments: Table 1
// (dataset statistics), Tables 2–3 (holdout test accuracy), Table 4
// (robustness to discarding dimension tables), Tables 5–6 (training
// accuracy), and Figure 1 (end-to-end runtimes).
//
// Usage:
//
//	hamlet -table 2 [-scale 64] [-effort fast|full] [-svmcap 400] [-seed 1] [-engine col|row]
//	hamlet -figure 1
//	hamlet -all
//
// It is also the training half of the serving pipeline: -train tunes one
// classifier spec on a generated dataset's JoinAll view and persists the
// fitted model (internal/model artifact) for cmd/hamletd to serve, and
// -eval loads an artifact back and reports its holdout test accuracy:
//
//	hamlet -train -dataset Movies -spec "NaiveBayes(BFS)" -model m.bin [-scale 64 -seed 1]
//	hamlet -eval -model m.bin [-dataset Movies -scale 64 -seed 1]
//
// The segmented engine (-engine seg) materializes the join into fixed-size
// columnar segments; -segsize tunes the partition and -spilldir/-cachebytes
// enable the out-of-core tier (segments on disk, LRU cache in memory). Two
// artifacts can be compared ignoring provenance metadata — the CI proof that
// an out-of-core run trains bit-identically to an in-memory one:
//
//	hamlet -modeldiff other.bin -model m.bin
//
// -fsck walks every segment heap file in a spill directory offline and
// verifies magic, format version, payload length, CRC32C, and column
// structure — the same checks the pager runs on every fault-in — exiting
// non-zero on any corruption or orphaned temp file:
//
//	hamlet -fsck /tmp/spill
//
// -faults injects deterministic I/O faults (short reads, torn writes,
// ENOSPC, EIO, latency) into the segmented engine's spill path, for chaos
// testing that training either fails with a typed error or produces a
// bit-identical artifact — never silently wrong bytes:
//
//	hamlet -train ... -engine seg -spilldir d -faults "read:eio:nth=40"
//
// -verify runs a named verification tier. The only tier today is
// "accuracy": every registered approximate training kernel (error-cache
// SMO, fused Adam) trains against its bit-exact reference across the
// Flights/Yelp/Expedia × row/col/seg matrix, and held-out accuracy,
// prediction-disagreement, and log-loss deltas must stay within the
// calibrated tolerances — the same gate CI and the test suite run:
//
//	hamlet -verify accuracy [-scale 256 -seed 1]
//
// Scale divides every dataset cardinality so the whole study runs on one
// core; tuple ratios — the quantity the paper's findings depend on — are
// preserved at every scale.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/relational"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hamlet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hamlet", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1-6)")
	figure := fs.Int("figure", 0, "figure to regenerate (1)")
	all := fs.Bool("all", false, "regenerate every table and Figure 1")
	scale := fs.Int("scale", 64, "divide dataset cardinalities by this factor")
	effort := fs.String("effort", "fast", "hyper-parameter grids: fast or full (paper-exact)")
	svmCap := fs.Int("svmcap", 400, "SMO training-set cap (0 = unbounded)")
	seed := fs.Uint64("seed", 1, "random seed")
	engine := fs.String("engine", "col", "storage engine for experiment data: col (columnar, the default), row (zero-copy join view), or seg (segmented columnar)")
	segSize := fs.Int("segsize", 0, "segmented engine: rows per segment (0 = default)")
	spillDir := fs.String("spilldir", "", "segmented engine: spill sealed segments to a heap file in this directory (out-of-core)")
	cacheBytes := fs.Int64("cachebytes", 0, "segmented engine: LRU cache budget in bytes for resident spilled segments (0 = never evict)")
	modelDiff := fs.String("modeldiff", "", "compare the -model artifact against this artifact ignoring metadata; exit nonzero when payloads differ")
	fsckDir := fs.String("fsck", "", "verify every segment heap file in this spill directory (checksums, headers, orphaned temps) and exit nonzero on corruption")
	faults := fs.String("faults", "", `inject I/O faults into the spill path, e.g. "read:eio:nth=40,write:enospc:every=9" (ops: open/read/write/sync/rename/close; kinds: eio/enospc/shortread/tornwrite/latency)`)
	csvOut := fs.String("csv", "", "also export accuracy cells (tables 2/3/5/6) as CSV to this path")
	jsonOut := fs.String("json", "", "also export accuracy cells as JSON to this path")
	serving := fs.Bool("serving", false, "run the serving study: factorized vs per-request-join inference timings")
	train := fs.Bool("train", false, "train -spec on -dataset's JoinAll view and save the model artifact to -model")
	eval := fs.Bool("eval", false, "load the -model artifact and report holdout test accuracy")
	modelPath := fs.String("model", "", "model artifact path (-train writes it, -eval reads it)")
	timings := fs.Bool("timings", false, "print per-phase training span totals (scan, gram_build, epochs, ...) after the run and embed them in -train artifact metadata")
	datasetName := fs.String("dataset", "", "dataset name for -train/-eval (see Table 1: Expedia, Movies, Yelp, Walmart, LastFM, Books, Flights)")
	specName := fs.String("spec", "NaiveBayes(BFS)", "classifier spec for -train (a Tables 2-3 model name)")
	verify := fs.String("verify", "", "run a verification tier: 'accuracy' trains every registered approximate kernel against its bit-exact reference across the Flights/Yelp/Expedia × engine matrix and holds held-out deltas to tolerance (-scale defaults to the gate's calibrated 256 here)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	o := experiments.Options{
		Scale:  *scale,
		SVMCap: *svmCap,
		Seed:   *seed,
		Out:    os.Stdout,
	}
	switch *effort {
	case "fast":
		o.Effort = core.EffortFast
	case "full":
		o.Effort = core.EffortFull
	default:
		return fmt.Errorf("unknown effort %q (want fast or full)", *effort)
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	o.Engine = eng
	core.SegmentDefaults = relational.SegmentOptions{
		SegmentSize: *segSize,
		SpillDir:    *spillDir,
		CacheBytes:  *cacheBytes,
	}
	if *faults != "" {
		rules, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		inj := fault.NewInjector(fault.OS, int64(*seed), rules...)
		core.SegmentDefaults.FS = inj
		// The fired summary prints on every exit path — a chaos run that
		// never tripped its faults proved nothing, and the summary is how
		// the caller can tell.
		defer func() {
			fmt.Fprintf(o.Out, "fault injection: %s\n", inj.FiredString())
		}()
	}
	if *timings {
		core.EmbedTimings = true
		defer printTimings(o.Out)
	}

	export := func(cells []experiments.AccuracyCell) error {
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := report.WriteAccuracyCSV(f, cells); err != nil {
				return err
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := report.WriteJSON(f, report.Bundle{Cells: cells}); err != nil {
				return err
			}
		}
		return nil
	}

	if *verify != "" {
		vscale := 0 // VerifyOptions default: the calibrated gate scale
		if explicit["scale"] {
			vscale = *scale
		}
		return runVerify(*verify, vscale, *seed, o.Out)
	}
	if *fsckDir != "" {
		return runFsck(*fsckDir, o.Out)
	}
	if *modelDiff != "" {
		return runModelDiff(*modelPath, *modelDiff, o)
	}
	if *train {
		return runTrain(*modelPath, *datasetName, *specName, o)
	}
	if *serving {
		_, err := experiments.ServingStudy(o)
		return err
	}
	if *eval {
		return runEval(*modelPath, *datasetName, o, explicit)
	}
	if *all {
		var allCells []experiments.AccuracyCell
		for _, t := range []int{1, 2, 3, 4, 5, 6} {
			cells, err := runTable(t, o)
			if err != nil {
				return err
			}
			allCells = append(allCells, cells...)
			fmt.Println()
		}
		if _, err := experiments.Figure1(o); err != nil {
			return err
		}
		return export(allCells)
	}
	if *table > 0 {
		cells, err := runTable(*table, o)
		if err != nil {
			return err
		}
		return export(cells)
	}
	if *figure == 1 {
		_, err := experiments.Figure1(o)
		return err
	}
	return fmt.Errorf("nothing to do: pass -table N, -figure 1, or -all")
}

// runVerify dispatches a verification tier by name. "accuracy" is the only
// tier with a CLI face: the bit-identity tier lives entirely in the test
// suite, while this one is also the CI accuracy-gate job's entry point. It
// prints every (kernel, dataset, engine) cell's measured held-out deltas
// and fails when any cell is outside its registered tolerance.
func runVerify(tier string, scale int, seed uint64, w io.Writer) error {
	if tier != "accuracy" {
		return fmt.Errorf("unknown verification tier %q (want accuracy)", tier)
	}
	cells, err := core.VerifyAccuracy(core.VerifyOptions{Scale: scale, Seed: seed})
	fmt.Fprintf(w, "%-16s %-8s %-4s %8s %8s %8s %9s %7s  %s\n",
		"kernel", "dataset", "eng", "refAcc", "approx", "accΔ", "disagree", "lossΔ", "status")
	for _, c := range cells {
		status := "ok"
		if c.Err != nil {
			status = "FAIL"
		}
		loss := "      -"
		if c.Delta.HasLoss {
			loss = fmt.Sprintf("%7.4f", c.Delta.LossDelta())
		}
		fmt.Fprintf(w, "%-16s %-8s %-4s %8.4f %8.4f %8.4f %9.4f %s  %s\n",
			c.Kernel, c.Dataset, c.Engine, c.Delta.RefAcc, c.Delta.ApproxAcc,
			c.Delta.AccDelta(), c.Delta.Disagreement, loss, status)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "accuracy gate: all %d cells within tolerance\n", len(cells))
	return nil
}

// printTimings renders the process-wide training-phase span totals — how much
// wall time each phase (column scan, Gram build, epochs, count/reduce, split
// search) accumulated across every Fit this invocation ran.
func printTimings(w io.Writer) {
	phases := obs.TrainPhases()
	names := make([]string, 0, len(phases))
	for name, t := range phases {
		if t.Calls > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintln(w, "training phase timings:")
	for _, name := range names {
		t := phases[name]
		fmt.Fprintf(w, "  %-14s %12s  (%d calls, avg %s)\n",
			name, time.Duration(t.Ns), t.Calls, time.Duration(t.Ns/t.Calls))
	}
}

// runFsck verifies every segment heap file in dir and reports; any issue —
// bad magic, version or CRC mismatch, truncated blob, undecodable columns,
// orphaned temp file — makes the run exit non-zero.
func runFsck(dir string, w io.Writer) error {
	rep, err := relational.FsckDir(fault.OS, dir)
	if err != nil {
		return err
	}
	relational.WriteFsckReport(w, rep)
	if !rep.OK() {
		return fmt.Errorf("fsck: %d issue(s) in %s", len(rep.Issues), dir)
	}
	return nil
}

// runModelDiff compares two artifacts' payloads, ignoring metadata: the
// artifacts are loaded, their Meta maps (which record provenance — engine,
// dataset, seed — and legitimately differ between, say, an in-memory and an
// out-of-core training run) are stripped, and both are re-encoded through
// the deterministic codec. Identical bytes mean identical fitted models.
func runModelDiff(pathA, pathB string, o experiments.Options) error {
	if pathA == "" {
		return fmt.Errorf("-modeldiff requires -model <path> as the comparison base")
	}
	encode := func(path string) ([]byte, string, error) {
		m, err := model.Load(path)
		if err != nil {
			return nil, "", err
		}
		m.Meta = nil
		var buf bytes.Buffer
		if err := model.Encode(&buf, m); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), m.Kind, nil
	}
	a, kindA, err := encode(pathA)
	if err != nil {
		return err
	}
	b, kindB, err := encode(pathB)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("artifacts differ: %s (%s, %d bytes) vs %s (%s, %d bytes)",
			pathA, kindA, len(a), pathB, kindB, len(b))
	}
	fmt.Fprintf(o.Out, "artifacts identical: %s == %s (%s, %d payload bytes)\n", pathA, pathB, kindA, len(a))
	return nil
}

// buildEnv generates a named dataset and prepares the experiment Env.
func buildEnv(name string, o experiments.Options) (*core.Env, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	ss, err := dataset.Generate(spec, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	return core.NewEnvEngine(ss, o.Seed, o.Engine)
}

// runTrain is the train half of the serving pipeline: tune the spec on the
// dataset's JoinAll view, report accuracies, and persist the artifact.
func runTrain(modelPath, datasetName, specName string, o experiments.Options) error {
	if modelPath == "" || datasetName == "" {
		return fmt.Errorf("-train requires -model <path> and -dataset <name>")
	}
	spec, err := core.SpecByName(specName, o.Effort, o.SVMCap)
	if err != nil {
		return err
	}
	env, err := buildEnv(datasetName, o)
	if err != nil {
		return err
	}
	defer env.Close()
	if st, ok := env.Joined.(*relational.SegmentedTable); ok {
		fmt.Fprintf(o.Out, "segmented join view: %d segments, spilled=%v\n", st.NumSegments(), st.Spilled())
	}
	m, res, err := core.BuildArtifact(env, spec, o.Seed, map[string]string{
		core.MetaDataset: datasetName,
		core.MetaScale:   strconv.Itoa(o.Scale),
		core.MetaEngine:  o.Engine.String(),
	})
	if err != nil {
		return err
	}
	if err := model.Save(modelPath, m); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "trained %s on %s (scale %d, seed %d): val %.4f, test %.4f\n",
		specName, datasetName, o.Scale, o.Seed, res.ValAcc, res.TestAcc)
	fmt.Fprintf(o.Out, "saved %s artifact (%s) to %s\n", m.Kind, m.Fingerprint().Short(), modelPath)
	return nil
}

// runEval loads an artifact and reports its holdout test accuracy on the
// regenerated dataset. Dataset, scale, and seed default from the artifact
// metadata — so `hamlet -eval -model m.bin` just works on a hamlet-trained
// model — but an explicitly passed flag always wins.
func runEval(modelPath, datasetName string, o experiments.Options, explicit map[string]bool) error {
	if modelPath == "" {
		return fmt.Errorf("-eval requires -model <path>")
	}
	m, err := model.Load(modelPath)
	if err != nil {
		return err
	}
	if datasetName == "" {
		datasetName = m.Meta[core.MetaDataset]
		if datasetName == "" {
			return fmt.Errorf("-eval: artifact has no dataset metadata; pass -dataset")
		}
	}
	if s := m.Meta[core.MetaScale]; s != "" && !explicit["scale"] {
		if v, err := strconv.Atoi(s); err == nil {
			o.Scale = v
		}
	}
	if s := m.Meta[core.MetaSeed]; s != "" && !explicit["seed"] {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			o.Seed = v
		}
	}
	env, err := buildEnv(datasetName, o)
	if err != nil {
		return err
	}
	defer env.Close()
	acc, err := core.EvalArtifact(env, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%s (%s) on %s holdout test: %.4f\n", m.Kind, m.Fingerprint().Short(), datasetName, acc)
	return nil
}

// runTable renders one table and returns its accuracy cells where the table
// has them (Table 1's stats and Table 4's sweep rows export nothing).
func runTable(t int, o experiments.Options) ([]experiments.AccuracyCell, error) {
	switch t {
	case 1:
		_, err := experiments.Table1(o)
		return nil, err
	case 2:
		return experiments.Table2(o)
	case 3:
		return experiments.Table3(o)
	case 4:
		_, err := experiments.Table4(o)
		return nil, err
	case 5:
		cells, err := experiments.Table2(o)
		if err != nil {
			return nil, err
		}
		return cells, experiments.Table5(o, cells)
	case 6:
		cells, err := experiments.Table3(o)
		if err != nil {
			return nil, err
		}
		return cells, experiments.Table6(o, cells)
	default:
		return nil, fmt.Errorf("unknown table %d (want 1-6)", t)
	}
}
