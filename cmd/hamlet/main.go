// Command hamlet regenerates the paper's real-data experiments: Table 1
// (dataset statistics), Tables 2–3 (holdout test accuracy), Table 4
// (robustness to discarding dimension tables), Tables 5–6 (training
// accuracy), and Figure 1 (end-to-end runtimes).
//
// Usage:
//
//	hamlet -table 2 [-scale 64] [-effort fast|full] [-svmcap 400] [-seed 1] [-engine row|col]
//	hamlet -figure 1
//	hamlet -all
//
// Scale divides every dataset cardinality so the whole study runs on one
// core; tuple ratios — the quantity the paper's findings depend on — are
// preserved at every scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hamlet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hamlet", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1-6)")
	figure := fs.Int("figure", 0, "figure to regenerate (1)")
	all := fs.Bool("all", false, "regenerate every table and Figure 1")
	scale := fs.Int("scale", 64, "divide dataset cardinalities by this factor")
	effort := fs.String("effort", "fast", "hyper-parameter grids: fast or full (paper-exact)")
	svmCap := fs.Int("svmcap", 400, "SMO training-set cap (0 = unbounded)")
	seed := fs.Uint64("seed", 1, "random seed")
	engine := fs.String("engine", "row", "storage engine for experiment data: row (zero-copy join view) or col (columnar)")
	csvOut := fs.String("csv", "", "also export accuracy cells (tables 2/3/5/6) as CSV to this path")
	jsonOut := fs.String("json", "", "also export accuracy cells as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := experiments.Options{
		Scale:  *scale,
		SVMCap: *svmCap,
		Seed:   *seed,
		Out:    os.Stdout,
	}
	switch *effort {
	case "fast":
		o.Effort = core.EffortFast
	case "full":
		o.Effort = core.EffortFull
	default:
		return fmt.Errorf("unknown effort %q (want fast or full)", *effort)
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	o.Engine = eng

	export := func(cells []experiments.AccuracyCell) error {
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := report.WriteAccuracyCSV(f, cells); err != nil {
				return err
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := report.WriteJSON(f, report.Bundle{Cells: cells}); err != nil {
				return err
			}
		}
		return nil
	}

	if *all {
		var allCells []experiments.AccuracyCell
		for _, t := range []int{1, 2, 3, 4, 5, 6} {
			cells, err := runTable(t, o)
			if err != nil {
				return err
			}
			allCells = append(allCells, cells...)
			fmt.Println()
		}
		if _, err := experiments.Figure1(o); err != nil {
			return err
		}
		return export(allCells)
	}
	if *table > 0 {
		cells, err := runTable(*table, o)
		if err != nil {
			return err
		}
		return export(cells)
	}
	if *figure == 1 {
		_, err := experiments.Figure1(o)
		return err
	}
	return fmt.Errorf("nothing to do: pass -table N, -figure 1, or -all")
}

// runTable renders one table and returns its accuracy cells where the table
// has them (Table 1's stats and Table 4's sweep rows export nothing).
func runTable(t int, o experiments.Options) ([]experiments.AccuracyCell, error) {
	switch t {
	case 1:
		_, err := experiments.Table1(o)
		return nil, err
	case 2:
		return experiments.Table2(o)
	case 3:
		return experiments.Table3(o)
	case 4:
		_, err := experiments.Table4(o)
		return nil, err
	case 5:
		cells, err := experiments.Table2(o)
		if err != nil {
			return nil, err
		}
		return cells, experiments.Table5(o, cells)
	case 6:
		cells, err := experiments.Table3(o)
		if err != nil {
			return nil, err
		}
		return cells, experiments.Table6(o, cells)
	default:
		return nil, fmt.Errorf("unknown table %d (want 1-6)", t)
	}
}
