package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := strings.Join([]string{
		"[ok](exists.md) and [anchored](exists.md#section)",
		"[web](https://example.com/x) [mail](mailto:a@b.c) [inpage](#here)",
		"[gone](missing.md)",
		"```",
		"[not a link check](also_missing.md)",
		"```",
	}, "\n")
	got := checkDoc(filepath.Join(dir, "doc.md"), doc)
	if len(got) != 1 || !strings.Contains(got[0], `broken link "missing.md"`) {
		t.Fatalf("violations = %q, want one broken link for missing.md", got)
	}
}

func TestCheckGoFences(t *testing.T) {
	clean := "```go\npackage main\n\nfunc main() {}\n```\n"
	if got := checkDoc("doc.md", clean); len(got) != 0 {
		t.Fatalf("gofmt-clean fence flagged: %q", got)
	}
	unformatted := "```go\npackage main\n\nfunc  main( ) {}\n```\n"
	got := checkDoc("doc.md", unformatted)
	if len(got) != 1 || !strings.Contains(got[0], "not gofmt-formatted") {
		t.Fatalf("violations = %q, want gofmt complaint", got)
	}
	broken := "```go\npackage main\n\nfunc main( {\n```\n"
	got = checkDoc("doc.md", broken)
	if len(got) != 1 || !strings.Contains(got[0], "does not parse") {
		t.Fatalf("violations = %q, want parse complaint", got)
	}
	// Excerpt fences (no package clause) are not gofmt's business.
	fragment := "```go\nif err != nil {\n\treturn err\n}\n```\n"
	if got := checkDoc("doc.md", fragment); len(got) != 0 {
		t.Fatalf("fragment fence flagged: %q", got)
	}
}
