// Command doccheck lints the repo's Markdown documentation so the docs CI
// job can fail on the two rot modes prose actually suffers: relative links
// pointing at files that moved or were deleted, and Go code fences that
// drifted out of gofmt shape (or stopped compiling as a file at all).
//
// Usage:
//
//	doccheck README.md ARCHITECTURE.md cmd/benchgate/README.md
//
// Each argument is a Markdown file. For every [text](target) link the tool
// skips absolute URLs (http, https, mailto) and pure in-page anchors
// (#section), strips any #fragment from what remains, and requires the
// referenced path to exist relative to the Markdown file's directory.
// Every ```go fence whose first code line starts with "package" is treated
// as a complete Go file and must be gofmt-clean; fragment fences (no
// package clause) are left alone, since gofmt cannot judge an excerpt.
//
// The tool prints one line per violation and exits 1 if any were found.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links. The target group deliberately
// excludes whitespace and closing parens: doc links here are plain relative
// paths or URLs, never titles-in-quotes or nested parens.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			bad++
			continue
		}
		for _, v := range checkDoc(path, string(src)) {
			fmt.Fprintln(os.Stderr, v)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

// checkDoc returns one human-readable violation string per broken link or
// unformatted complete-file Go fence in the document.
func checkDoc(path, src string) []string {
	var out []string
	out = append(out, checkLinks(path, src)...)
	out = append(out, checkGoFences(path, src)...)
	return out
}

func checkLinks(path, src string) []string {
	dir := filepath.Dir(path)
	var out []string
	inFence := false
	for lineNo, line := range strings.Split(src, "\n") {
		// Links inside code fences are example syntax, not references.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, lineNo+1, m[1]))
			}
		}
	}
	return out
}

func checkGoFences(path, src string) []string {
	var out []string
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		end := start
		for end < len(lines) && strings.TrimSpace(lines[end]) != "```" {
			end++
		}
		fence := strings.Join(lines[start:end], "\n")
		i = end
		if !isCompleteFile(fence) {
			continue
		}
		formatted, err := format.Source([]byte(fence + "\n"))
		if err != nil {
			out = append(out, fmt.Sprintf("%s:%d: go fence does not parse: %v", path, start, err))
			continue
		}
		if string(formatted) != fence+"\n" {
			out = append(out, fmt.Sprintf("%s:%d: go fence is not gofmt-formatted", path, start))
		}
	}
	return out
}

// isCompleteFile reports whether a fence is a whole Go file (and so fair
// game for gofmt) rather than an excerpt.
func isCompleteFile(fence string) bool {
	for _, line := range strings.Split(fence, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return strings.HasPrefix(t, "package ")
	}
	return false
}
