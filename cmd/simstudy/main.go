// Command simstudy regenerates the paper's Monte-Carlo simulation study:
// Figure 2 (OneXr panels A–F, gini tree), Figures 3–4 (OneXr n_R sweep with
// test error and net variance for 1-NN and RBF-SVM), Figure 5 (foreign-key
// skew), Figure 6 (XSXR), and Figures 7–9 (RepOneXr for tree / RBF-SVM /
// 1-NN).
//
// Usage:
//
//	simstudy -figure 2 [-panels A,B] [-runs 10] [-seed 1]
//	simstudy -figure 5
//	simstudy -all
//
// The paper averages 100 runs per point; -runs trades precision for time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simstudy", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure to regenerate (2-9; 3 and 4 run together, as do 7-9)")
	linearOnly := fs.Bool("linear", false, "run the prior-work linear-model contrast sweep")
	all := fs.Bool("all", false, "regenerate every simulation figure")
	panels := fs.String("panels", "", "comma-separated panel letters for figure 2 (default all)")
	runs := fs.Int("runs", 10, "Monte-Carlo runs per point (paper: 100)")
	svmCap := fs.Int("svmcap", 400, "SMO training-set cap")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := experiments.Options{
		Runs:   *runs,
		SVMCap: *svmCap,
		Seed:   *seed,
		Out:    os.Stdout,
	}
	var panelList []string
	if *panels != "" {
		for _, p := range strings.Split(*panels, ",") {
			panelList = append(panelList, strings.ToUpper(strings.TrimSpace(p)))
		}
	}

	runFig := func(f int) error {
		switch f {
		case 0:
			// -linear: prior-work contrast (no paper figure number).
			_, err := experiments.LinearBaseline(o)
			return err
		case 2:
			_, err := experiments.Figure2(o, panelList)
			return err
		case 3, 4:
			_, err := experiments.Figure3And4(o)
			return err
		case 5:
			_, err := experiments.Figure5(o)
			return err
		case 6:
			_, err := experiments.Figure6(o)
			return err
		case 7, 8, 9:
			_, err := experiments.Figures7to9(o)
			return err
		default:
			return fmt.Errorf("unknown figure %d (want 2-9)", f)
		}
	}

	if *all {
		for _, f := range []int{2, 3, 5, 6, 7, 0} {
			if err := runFig(f); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	if *linearOnly {
		return runFig(0)
	}
	if *figure == 0 {
		return fmt.Errorf("nothing to do: pass -figure N, -linear, or -all")
	}
	return runFig(*figure)
}
