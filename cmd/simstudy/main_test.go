package main

import "testing"

func TestRunRejectsBadArguments(t *testing.T) {
	cases := [][]string{
		{},               // nothing to do
		{"-figure", "1"}, // figure 1 lives in hamlet
		{"-figure", "12"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}
