// Advisor: a data-sourcing advisor session across the paper's seven star
// schemas. For every dataset and every model family it reports which
// dimension tables can be skipped before anyone bothers to procure them —
// the paper's headline capability — using only tuple ratios from schema
// metadata.
package main

import (
	"fmt"
	"log"

	"os"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/texttable"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	families := []core.Family{core.FamilyLinear, core.FamilyRBFSVM, core.FamilyTreeANN}
	tab := texttable.New("Dataset", "Dimension", "TupleRatio", "linear", "rbf-svm", "tree/ann")
	totalAvoidable := map[core.Family]int{}
	totalTables := 0

	for _, spec := range dataset.Specs() {
		ss, err := dataset.Generate(spec, 64, 42)
		if err != nil {
			return err
		}
		// One advice list per family; they share the tuple ratios.
		perFamily := map[core.Family][]core.Advice{}
		for _, f := range families {
			advice, err := core.Advise(ss, f)
			if err != nil {
				return err
			}
			perFamily[f] = advice
		}
		for i := range perFamily[core.FamilyLinear] {
			base := perFamily[core.FamilyLinear][i]
			totalTables++
			ratio := texttable.F2(base.TupleRatio)
			if base.OpenFK {
				ratio = "N/A (open FK)"
			}
			verdict := func(f core.Family) string {
				a := perFamily[f][i]
				if a.SafeToAvoid {
					totalAvoidable[f]++
					return "avoid"
				}
				return "join"
			}
			tab.Row(spec.Name, base.Dimension, ratio,
				verdict(core.FamilyLinear), verdict(core.FamilyRBFSVM), verdict(core.FamilyTreeANN))
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nOf %d dimension tables: linear models can avoid %d, RBF-SVM %d, trees/ANNs %d.\n",
		totalTables,
		totalAvoidable[core.FamilyLinear],
		totalAvoidable[core.FamilyRBFSVM],
		totalAvoidable[core.FamilyTreeANN])
	fmt.Println("Higher-capacity classifiers tolerate lower tuple ratios — the paper's")
	fmt.Println("counter-intuitive finding — so they let you skip MORE joins, not fewer.")
	return nil
}
