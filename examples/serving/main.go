// Serving walkthrough: the full train → save → serve pipeline, end to end.
//
// The example generates a star schema (the Walmart stand-in: a sales fact
// table with Stores and Indicators dimensions), trains a logistic
// regression on the factorized JoinAll view, persists the model to a
// versioned artifact, loads it back, and serves it two ways:
//
//  1. over HTTP — a real hamletd-style server on an OS-assigned port,
//     scoring one request through POST /predict;
//  2. in process — replaying fact rows through the factorized engine
//     (per-dimension partial-score lookups, no join) and through the
//     joined path (per-request gather), timing both and verifying the
//     scores are bit-identical.
//
// The punchline mirrors the paper's: the KFK join is avoidable at
// prediction time too, and avoiding it is a large constant-factor win per
// request.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/relational"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Train: generate the dataset, tune logistic regression on the
	// JoinAll view, and wrap the fitted model in an artifact.
	const (
		datasetName = "Walmart"
		scale       = 512
		seed        = 7
	)
	spec, err := dataset.SpecByName(datasetName)
	if err != nil {
		return err
	}
	ss, err := dataset.Generate(spec, scale, seed)
	if err != nil {
		return err
	}
	env, err := core.NewEnv(ss, seed)
	if err != nil {
		return err
	}
	artifact, res, err := core.BuildArtifact(env, core.LogRegSpec(core.EffortFast), seed, map[string]string{
		core.MetaDataset: datasetName,
		core.MetaScale:   fmt.Sprint(scale),
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained %s on %s: validation %.4f, holdout test %.4f\n",
		artifact.Kind, datasetName, res.ValAcc, res.TestAcc)

	// --- Save and load: the artifact is deterministic, versioned bytes with
	// a schema fingerprint that serving will verify.
	dir, err := os.MkdirTemp("", "hamlet-serving-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "walmart-logreg.model")
	if err := model.Save(path, artifact); err != nil {
		return err
	}
	loaded, err := model.Load(path)
	if err != nil {
		return err
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved + loaded artifact %s (%d bytes, schema %s)\n",
		filepath.Base(path), info.Size(), loaded.Fingerprint().Short())

	// --- Serve over HTTP: bind the model to the star schema and answer a
	// request that carries only fact attributes and FK ids.
	engine, err := serve.NewEngine(loaded, ss)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewServer(engine).Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	input := map[string]int32{}
	reqVec := engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(0))
	for i, f := range engine.InputFeatures() {
		input[f.Name] = reqVec[i]
	}
	body, _ := json.Marshal(map[string]any{"input": input})
	resp, err := http.Post(fmt.Sprintf("http://%s/predict", ln.Addr()), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	answer, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /predict %s -> %s", string(body), string(answer))

	// --- Score with and without the join: replay fact rows as requests and
	// time the two paths.
	n := ss.Fact.NumRows()
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	for _, req := range reqs {
		pf, err := engine.PredictFactorized(req)
		if err != nil {
			return err
		}
		pj, err := engine.PredictJoined(req)
		if err != nil {
			return err
		}
		if math.Float64bits(pf.Score) != math.Float64bits(pj.Score) {
			return fmt.Errorf("scores diverged: %v vs %v", pf.Score, pj.Score)
		}
	}
	const passes = 20
	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, req := range reqs {
			engine.PredictFactorized(req)
		}
	}
	factorizedNs := float64(time.Since(start).Nanoseconds()) / float64(passes*n)
	start = time.Now()
	for p := 0; p < passes; p++ {
		for _, req := range reqs {
			engine.PredictJoined(req)
		}
	}
	joinedNs := float64(time.Since(start).Nanoseconds()) / float64(passes*n)
	fmt.Printf("factorized: %.0f ns/request   with join: %.0f ns/request   speedup: %.1fx (scores bit-identical)\n",
		factorizedNs, joinedNs, joinedNs/factorizedNs)
	return nil
}
