// Quickstart: the paper's running example — predicting customer churn from
// a Customers fact table with a foreign key into an Employers dimension
// table. The example builds the star schema, asks the advisor whether the
// join is safe to avoid, and compares JoinAll vs NoJoin accuracy with a
// decision tree to confirm the advice.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Build the Employers dimension table: 40 employers with State and
	// Revenue attributes. Employer 0..19 are "rich coastal" companies.
	const nEmployers = 40
	empID := relational.NewDomain("EmployerID", nEmployers)
	state := relational.NewLabeledDomain("State", []string{"CA", "NY", "WI", "TX"})
	revenue := relational.NewLabeledDomain("Revenue", []string{"low", "high"})
	employers := relational.NewTable("Employers", relational.MustSchema(
		relational.Column{Name: "EmployerID", Kind: relational.KindPrimaryKey, Domain: empID},
		relational.Column{Name: "State", Kind: relational.KindFeature, Domain: state},
		relational.Column{Name: "Revenue", Kind: relational.KindFeature, Domain: revenue},
	), nEmployers)
	r := rng.New(2024)
	for e := 0; e < nEmployers; e++ {
		st := relational.Value(r.Intn(4))
		rev := relational.Value(0)
		if e < nEmployers/2 {
			rev = 1 // the first half are high-revenue employers
		}
		employers.MustAppendRow([]relational.Value{relational.Value(e), st, rev})
	}

	// --- Build the Customers fact table: churn depends mostly on the
	// employer's revenue (a foreign feature!) plus noise.
	const nCustomers = 2000
	churn := relational.NewLabeledDomain("Churn", []string{"no", "yes"})
	gender := relational.NewLabeledDomain("Gender", []string{"F", "M"})
	age := relational.NewLabeledDomain("AgeBand", []string{"18-30", "31-50", "51+"})
	customers := relational.NewTable("Customers", relational.MustSchema(
		relational.Column{Name: "Churn", Kind: relational.KindTarget, Domain: churn},
		relational.Column{Name: "Gender", Kind: relational.KindFeature, Domain: gender},
		relational.Column{Name: "AgeBand", Kind: relational.KindFeature, Domain: age},
		relational.Column{Name: "Employer", Kind: relational.KindForeignKey, Domain: empID, Refs: "Employers"},
	), nCustomers)
	for i := 0; i < nCustomers; i++ {
		emp := r.Intn(nEmployers)
		rich := employers.At(emp, 2) == 1
		y := relational.Value(1) // churn by default
		if rich {
			y = 0 // customers at rich employers rarely churn
		}
		if r.Bernoulli(0.15) {
			y = 1 - y
		}
		customers.MustAppendRow([]relational.Value{
			y, relational.Value(r.Intn(2)), relational.Value(r.Intn(3)), relational.Value(emp),
		})
	}

	star, err := relational.NewStarSchema(customers, employers)
	if err != nil {
		return err
	}

	// --- Ask the advisor: is the Employers join safe to avoid for a
	// decision tree? The answer needs only the tuple ratio (2000/40 = 50).
	advice, err := core.Advise(star, core.FamilyTreeANN)
	if err != nil {
		return err
	}
	for _, a := range advice {
		fmt.Printf("advisor: dimension %q, tuple ratio %.1f, safe to avoid: %v\n",
			a.Dimension, a.TupleRatio, a.SafeToAvoid)
	}

	// --- Verify empirically: tune a gini tree under JoinAll and NoJoin.
	env, err := core.NewEnv(star, 7)
	if err != nil {
		return err
	}
	spec := core.TreeSpec(tree.Gini, core.EffortFast)
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin} {
		res, err := core.Run(env, v, spec, 11)
		if err != nil {
			return err
		}
		fmt.Printf("%-8v holdout accuracy %.4f (train %.4f, tuned %v, %v)\n",
			v, res.TestAcc, res.TrainAcc, res.BestPoint, res.Elapsed.Round(1000))
	}
	fmt.Println("NoJoin matches JoinAll: the foreign key proxies the employer features,")
	fmt.Println("so the Employers table never needed to be procured.")
	return nil
}
