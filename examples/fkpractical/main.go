// FK-practical: demonstrates the two §6 techniques that make foreign-key
// features usable in production — lossy domain compression (for tree
// interpretability) and unseen-value smoothing (R's trees crash on FK
// values that never occurred in training; ours remap them).
package main

import (
	"fmt"
	"log"

	"repro/internal/fk"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sample one OneXr trial: NoJoin features are [XS..., FK].
	scenario, err := sim.NewOneXr(2000, 100, 2, 4, 0.1, 2, sim.Skew{}, 3)
	if err != nil {
		return err
	}
	r := rng.New(17)
	trial, err := scenario.Sample(r)
	if err != nil {
		return err
	}
	train := trial.Train[ml.NoJoin]
	val := trial.Val[ml.NoJoin]
	test := trial.Test[ml.NoJoin]
	fkCol := train.NumFeatures() - 1

	fit := func(tr, te *ml.Dataset) float64 {
		t := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
		if err := t.Fit(tr); err != nil {
			log.Fatal(err)
		}
		return ml.Accuracy(t, te)
	}

	// --- Part 1: domain compression. The FK has 100 values; compress to a
	// handful of buckets and compare random hashing vs sort-based.
	fmt.Println("Part 1: FK domain compression (|D_FK| = 100, NoJoin gini tree)")
	fmt.Printf("  %-10s %-10s %s\n", "budget", "Random", "Sort-based")
	for _, budget := range []int{2, 5, 10, 25, 50} {
		hash, err := fk.NewRandomHash(100, budget, rng.New(uint64(budget)))
		if err != nil {
			return err
		}
		sortc, err := fk.NewSortBased(train, fkCol, budget, rng.New(uint64(budget)*7))
		if err != nil {
			return err
		}
		var accs [2]float64
		for i, c := range []fk.Compressor{hash, sortc} {
			ctr, err := fk.CompressFeature(train, fkCol, c)
			if err != nil {
				return err
			}
			cte, err := fk.CompressFeature(test, fkCol, c)
			if err != nil {
				return err
			}
			accs[i] = fit(ctr, cte)
		}
		fmt.Printf("  %-10d %-10.4f %.4f\n", budget, accs[0], accs[1])
	}
	fmt.Printf("  uncompressed accuracy: %.4f (validation %.4f)\n\n", fit(train, test), fit(train, val))

	// --- Part 2: smoothing. Withhold 40% of FK values from training, then
	// classify test rows carrying them.
	fmt.Println("Part 2: smoothing FK values unseen in training (40% withheld)")
	withheld := map[int32]bool{}
	perm := rng.New(23).Perm(100)
	for _, v := range perm[:40] {
		withheld[int32(v)] = true
	}
	var keep []int
	for i := 0; i < train.NumExamples(); i++ {
		if !withheld[train.At(i, fkCol)] {
			keep = append(keep, i)
		}
	}
	filtered := train.Subset(keep)

	randomSm, err := fk.NewRandomSmoother(filtered, 29)
	if err != nil {
		return err
	}
	xrSm, err := fk.NewXRSmoother(filtered, fkCol, scenario.Dimension(), 31)
	if err != nil {
		return err
	}
	for _, c := range []struct {
		name     string
		smoother tree.Smoother
	}{
		{"majority-route (no smoother)", nil},
		{"random reassignment", randomSm},
		{"X_R-based reassignment", xrSm},
	} {
		cfg := tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3}
		if c.smoother != nil {
			cfg.Unseen = tree.UnseenSmooth
			cfg.Smoother = c.smoother
		}
		t := tree.New(cfg)
		if err := t.Fit(filtered); err != nil {
			return err
		}
		fmt.Printf("  %-30s holdout accuracy %.4f\n", c.name, ml.Accuracy(t, test))
	}
	fmt.Println("\nX_R-based smoothing uses the dimension table as side information only —")
	fmt.Println("the model still never trains on foreign features (best of both worlds).")
	return nil
}
