// Simulation: a minimal Monte-Carlo run of the paper's worst-case OneXr
// scenario — a lone foreign feature determines the label, yet the foreign
// key alone (NoJoin) matches the full join for a decision tree. The example
// prints the average test error and the Domingos bias / net-variance
// decomposition per feature view.
package main

import (
	"fmt"
	"log"

	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// OneXr at the paper's defaults: nS=1000, nR=40 (tuple ratio 25),
	// dS=dR=4, Bayes error 0.1.
	scenario, err := sim.NewOneXr(1000, 40, 4, 4, 0.1, 2, sim.Skew{}, 7)
	if err != nil {
		return err
	}
	learner := sim.Learner{
		Name: "DecisionTree(gini)",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			grid := ml.NewGrid().Axis("minsplit", 1, 10, 100).Axis("cp", 1e-3, 0.01, 0)
			res, err := ml.GridSearch(grid, func(p ml.GridPoint) (ml.Classifier, error) {
				return tree.New(tree.Config{
					Criterion: tree.Gini,
					MinSplit:  int(p["minsplit"]),
					CP:        p["cp"],
				}), nil
			}, train, val)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		},
	}

	const runs = 20
	fmt.Printf("OneXr scenario, %d Monte-Carlo runs, Bayes error 0.10\n\n", runs)
	result, err := sim.MonteCarlo(scenario, learner, runs, 99)
	if err != nil {
		return err
	}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		d := result.Views[v]
		fmt.Printf("%-8v avg test error %.4f | bias %.4f | net variance %+.4f\n",
			v, d.AvgTestError, d.AvgBias, d.NetVariance)
	}
	fmt.Println("\nNoJoin tracks JoinAll at tuple ratio 25 — the FD FK→Xr lets the tree")
	fmt.Println("use the foreign key as a stand-in for the discarded foreign feature.")
	return nil
}
