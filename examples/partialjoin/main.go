// Partialjoin: explores the trade-off space the paper's §5.2 leaves as an
// open question — since the FD axioms let foreign features be split into
// arbitrary subsets before being avoided, there is a continuum between
// fully avoiding a dimension table (NoJoin) and fully joining it (JoinAll).
// The example sweeps that continuum on the Yelp-shaped dataset's widest
// dimension table and prints the accuracy curve.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/texttable"
	"repro/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := dataset.SpecByName("Yelp")
	if err != nil {
		return err
	}
	ss, err := dataset.Generate(spec, 128, 9)
	if err != nil {
		return err
	}
	env, err := core.NewEnv(ss, 11)
	if err != nil {
		return err
	}

	// The menu of foreign features per dimension.
	menu := ml.ForeignFeatureNames(env.Joined)
	fmt.Println("Foreign-feature menu:")
	for dim, feats := range menu {
		fmt.Printf("  %-12s %d features\n", dim, len(feats))
	}

	pts, err := core.PartialJoinSweep(env, "Businesses", core.TreeSpec(tree.Gini, core.EffortFast), 13)
	if err != nil {
		return err
	}
	fmt.Println("\nPartial-join sweep over Businesses (gini tree):")
	tab := texttable.New("kept", "last feature added", "test accuracy")
	for _, p := range pts {
		last := "(none — NoJoin endpoint)"
		if p.Kept > 0 {
			last = p.Feature[p.Kept-1]
		}
		tab.Row(p.Kept, last, texttable.F(p.TestAcc))
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nFor this tree the curve is flat: the FK column already subsumes every")
	fmt.Println("foreign feature (the FD FK→X_R at work), so any prefix of the join —")
	fmt.Println("including the empty one — performs alike. The trade-off space matters")
	fmt.Println("for models that cannot exploit the FK directly.")
	return nil
}
